package poller

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pollers returns every implementation available on this platform, keyed by
// name. New picks the platform default; the fallback is always testable.
func pollers() map[string]func(func(Token)) (Poller, error) {
	m := map[string]func(func(Token)) (Poller, error){
		"platform": New,
		"fallback": NewFallback,
	}
	return m
}

// pair returns a connected TCP pair (client, server side) on loopback.
func pair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() {
		client.Close()
		r.c.Close()
	})
	return client, r.c
}

func TestPollerReadinessAndRearm(t *testing.T) {
	for name, mk := range pollers() {
		t.Run(name, func(t *testing.T) {
			events := make(chan Token, 16)
			p, err := mk(func(tok Token) { events <- tok })
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			client, srv := pair(t)
			tok, err := p.Add(srv)
			if err != nil {
				t.Fatal(err)
			}

			// Registered but not armed: data must not produce an event.
			client.Write([]byte("x"))
			select {
			case got := <-events:
				t.Fatalf("event %d before Arm", got)
			case <-time.After(100 * time.Millisecond):
			}

			// Arm with data already pending: the probe must synthesize the
			// event even though the bytes arrived before the mask existed.
			if err := p.Arm(tok); err != nil {
				t.Fatal(err)
			}
			select {
			case got := <-events:
				if got != tok {
					t.Fatalf("event token %d, want %d", got, tok)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("no readiness event after Arm with data pending")
			}

			// More data without re-arm MAY deliver further events (the epoll
			// implementation is edge-triggered; the fallback is per-arm).
			// Drain whatever arrives — duplicates are part of the contract.
			client.Write([]byte("y"))
			drain := time.After(150 * time.Millisecond)
		drained:
			for {
				select {
				case got := <-events:
					if got != tok {
						t.Fatalf("event for token %d, want %d", got, tok)
					}
				case <-drain:
					break drained
				}
			}

			// Re-arm with data still unread: guaranteed to fire again — this
			// is the probe that makes parking with kernel-buffered bytes safe.
			if err := p.Arm(tok); err != nil {
				t.Fatal(err)
			}
			select {
			case <-events:
			case <-time.After(5 * time.Second):
				t.Fatal("no event after re-arm with unread data")
			}

			if err := p.Remove(tok); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPollerEOFIsReadiness(t *testing.T) {
	for name, mk := range pollers() {
		t.Run(name, func(t *testing.T) {
			events := make(chan Token, 1)
			p, err := mk(func(tok Token) { events <- tok })
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			client, srv := pair(t)
			tok, err := p.Add(srv)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Arm(tok); err != nil {
				t.Fatal(err)
			}
			client.Close() // peer hangs up: the armed wait must fire
			select {
			case <-events:
			case <-time.After(5 * time.Second):
				t.Fatal("no readiness event on peer close")
			}
		})
	}
}

// TestPollerAcceptStormConcurrentClose is the -race smoke: many goroutines
// registering, arming, and writing while Close races them. Nothing may hang,
// double-fire after Close, or trip the race detector.
func TestPollerAcceptStormConcurrentClose(t *testing.T) {
	for name, mk := range pollers() {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 8; round++ {
				var fired atomic.Int64
				p, err := mk(func(Token) { fired.Add(1) })
				if err != nil {
					t.Fatal(err)
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				var conns sync.Map
				for i := 0; i < 16; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						srvSide := make(chan net.Conn, 1)
						go func() {
							c, err := ln.Accept()
							if err != nil {
								srvSide <- nil
								return
							}
							srvSide <- c
						}()
						client, err := net.Dial("tcp", ln.Addr().String())
						if err != nil {
							return
						}
						conns.Store(client, true)
						srv := <-srvSide
						if srv == nil {
							return
						}
						conns.Store(srv, true)
						tok, err := p.Add(srv)
						if err != nil {
							return // racing Close: fine
						}
						if err := p.Arm(tok); err != nil {
							return
						}
						client.Write([]byte("hello"))
						// Half the registrations are removed mid-flight.
						if tok%2 == 0 {
							p.Remove(tok)
						}
					}()
				}
				// Close races the storm.
				done := make(chan struct{})
				go func() {
					p.Close()
					close(done)
				}()
				wg.Wait()
				select {
				case <-done:
				case <-time.After(10 * time.Second):
					t.Fatal("Close hung during storm")
				}
				ln.Close()
				conns.Range(func(k, _ any) bool {
					k.(net.Conn).Close()
					return true
				})
			}
		})
	}
}

func TestPollerAddAfterCloseFails(t *testing.T) {
	for name, mk := range pollers() {
		t.Run(name, func(t *testing.T) {
			p, err := mk(func(Token) {})
			if err != nil {
				t.Fatal(err)
			}
			p.Close()
			_, srv := pair(t)
			if _, err := p.Add(srv); err == nil {
				t.Fatal("Add after Close succeeded")
			}
		})
	}
}
