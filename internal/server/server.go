// Package server provides the TCP front end: it accepts connections, binds
// each to an engine worker, and speaks the memcached protocols via
// internal/protocol. Go's goroutine-per-connection model stands in for
// memcached's libevent worker threads; the synchronization structure under
// study (worker threads sharing the cache with maintenance threads) is
// identical.
package server

import (
	"errors"
	"net"
	"sync"

	"repro/internal/engine"
	"repro/internal/protocol"
)

// Server is a running memcached front end.
type Server struct {
	cache *engine.Cache
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Listen starts serving cache on addr (e.g. "127.0.0.1:0"). The cache's
// maintenance threads must already be started.
func Listen(cache *engine.Cache, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{cache: cache, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			worker := s.cache.NewWorker()
			_ = protocol.NewConn(worker, conn).Serve()
		}()
	}
}

// Close stops accepting, closes live connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
