package memslap

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/server"
)

func newCache(t *testing.T, b engine.Branch) *engine.Cache {
	t.Helper()
	c := engine.New(engine.Config{Branch: b, HashPower: 8, MemLimit: 16 << 20})
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func TestRunDirectCounts(t *testing.T) {
	c := newCache(t, engine.ITOnCommit)
	cfg := Config{Concurrency: 4, ExecuteNumber: 500, KeySpace: 200, ValueSize: 64}
	res := RunDirect(c, cfg)
	if res.Ops != 4*500 {
		t.Errorf("Ops = %d, want 2000", res.Ops)
	}
	if res.Gets+res.Sets != res.Ops {
		t.Errorf("gets+sets = %d+%d != ops %d", res.Gets, res.Sets, res.Ops)
	}
	// ~10% sets with generous slack.
	if res.Sets < res.Ops/20 || res.Sets > res.Ops/4 {
		t.Errorf("Sets = %d of %d, not near 10%%", res.Sets, res.Ops)
	}
	if res.Errors != 0 {
		t.Errorf("Errors = %d", res.Errors)
	}
	if res.Duration <= 0 {
		t.Error("Duration not measured")
	}
	if res.OpsPerSec() <= 0 {
		t.Error("OpsPerSec = 0")
	}
}

func TestRunDirectHitRateRises(t *testing.T) {
	c := newCache(t, engine.Baseline)
	cfg := Config{Concurrency: 2, ExecuteNumber: 3000, KeySpace: 100, ValueSize: 32}
	first := RunDirect(c, cfg)
	second := RunDirect(c, cfg)
	if second.Hits <= first.Hits/2 {
		t.Errorf("hit count did not stabilize: first=%d second=%d", first.Hits, second.Hits)
	}
	if second.Hits == 0 {
		t.Error("no hits on a populated cache")
	}
}

func TestRunDirectDeterministicMix(t *testing.T) {
	c1 := newCache(t, engine.Semaphore)
	c2 := newCache(t, engine.Semaphore)
	cfg := Config{Concurrency: 3, ExecuteNumber: 1000, Seed: 7}
	r1 := RunDirect(c1, cfg)
	r2 := RunDirect(c2, cfg)
	if r1.Sets != r2.Sets || r1.Gets != r2.Gets {
		t.Errorf("same seed produced different mixes: %+v vs %+v", r1, r2)
	}
}

func TestRunNetworkText(t *testing.T) {
	c := newCache(t, engine.IPOnCommit)
	s, err := server.Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := RunNetwork(s.Addr(), Config{Concurrency: 3, ExecuteNumber: 300, KeySpace: 100, ValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 900 || res.Errors != 0 {
		t.Errorf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if res.Hits == 0 {
		t.Error("no hits over 900 ops on 100 keys")
	}
}

func TestRunNetworkBinary(t *testing.T) {
	c := newCache(t, engine.ITOnCommit)
	s, err := server.Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := RunNetwork(s.Addr(), Config{Concurrency: 2, ExecuteNumber: 300, KeySpace: 50, ValueSize: 64, Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 600 || res.Errors != 0 {
		t.Errorf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if res.Hits == 0 {
		t.Error("no hits")
	}
}

func TestRunNetworkReconnect(t *testing.T) {
	c := newCache(t, engine.Semaphore)
	s, err := server.Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Re-dial every 25 ops: 300 ops per client forces ~12 reconnects each,
	// and the run must stay error-free across every connection cycle.
	res, err := RunNetwork(s.Addr(), Config{
		Concurrency: 3, ExecuteNumber: 300, KeySpace: 100, ValueSize: 64, Reconnect: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 900 || res.Errors != 0 {
		t.Errorf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	if res.Hits == 0 {
		t.Error("no hits across reconnect cycles")
	}
}

func TestRunNetworkDialFailure(t *testing.T) {
	if _, err := RunNetwork("127.0.0.1:1", Config{Concurrency: 1, ExecuteNumber: 1}); err == nil {
		t.Error("expected dial error")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Concurrency != 1 || cfg.ExecuteNumber == 0 || cfg.SetFraction != 0.1 ||
		cfg.KeySpace == 0 || cfg.ValueSize != 1024 || cfg.Seed == 0 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestZipfSkewsTraffic(t *testing.T) {
	// The Zipf mode must concentrate a large share of draws on low ranks.
	counts := make([]int, 1024)
	r := rng{s: 42}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[zipfPick(r.next(), 1024)]++
	}
	top16 := 0
	for _, c := range counts[:16] {
		top16 += c
	}
	if frac := float64(top16) / draws; frac < 0.3 {
		t.Errorf("top-16 keys got %.1f%% of traffic, want heavy tail (>30%%)", 100*frac)
	}
	// Bounds respected.
	for i := 0; i < 10000; i++ {
		if k := zipfPick(r.next(), 7); k < 0 || k >= 7 {
			t.Fatalf("zipfPick out of range: %d", k)
		}
	}
}

func TestRunDirectZipf(t *testing.T) {
	c := newCache(t, engine.ITOnCommit)
	res := RunDirect(c, Config{Concurrency: 2, ExecuteNumber: 2000, KeySpace: 512, ValueSize: 64, Zipf: true})
	if res.Ops != 4000 || res.Errors != 0 {
		t.Errorf("ops=%d errors=%d", res.Ops, res.Errors)
	}
	// Hot keys repeat, so the hit rate under Zipf should exceed uniform.
	uniform := RunDirect(newCache(t, engine.ITOnCommit), Config{Concurrency: 2, ExecuteNumber: 2000, KeySpace: 512, ValueSize: 64})
	if res.Hits <= uniform.Hits {
		t.Logf("zipf hits=%d uniform hits=%d (usually zipf wins; not a hard failure)", res.Hits, uniform.Hits)
	}
}
