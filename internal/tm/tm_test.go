package tm_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/tm"
)

func TestOptionsBuilder(t *testing.T) {
	o := tm.With(tm.ReadOnly(), tm.StartSerial(), tm.Label("site"), tm.MaxRetries(3))
	want := tm.Options{ReadOnly: true, StartSerial: true, Site: "site", MaxRetries: 3}
	if o != want {
		t.Fatalf("With(...) = %+v, want %+v", o, want)
	}
	if z := tm.With(); z != (tm.Options{}) {
		t.Fatalf("With() = %+v, want zero", z)
	}
}

func TestAtomicRelaxedRoundTrip(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT})
	th := rt.NewThread()
	v := stm.NewTWord(1)

	if err := tm.Atomic(th, tm.Options{Site: "t"}, func(tx *stm.Tx) { v.Store(tx, 2) }); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if err := tm.Relaxed(th, tm.With(tm.StartSerial()), func(tx *stm.Tx) { v.Store(tx, v.Load(tx)+1) }); err != nil {
		t.Fatalf("Relaxed: %v", err)
	}
	if got := v.LoadDirect(); got != 3 {
		t.Fatalf("v = %d, want 3", got)
	}
	if got := rt.Stats().StartSerial; got != 1 {
		t.Fatalf("StartSerial = %d, want 1 (the Relaxed run)", got)
	}

	tm.StoreWord(th, v, 10)
	if got := tm.AddWord(th, v, 5); got != 15 {
		t.Fatalf("AddWord = %d, want 15", got)
	}
	if got := tm.LoadWord(th, v); got != 15 {
		t.Fatalf("LoadWord = %d, want 15", got)
	}
}

func TestReadOnlyOptionReachesFastPath(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT})
	th := rt.NewThread()
	v := stm.NewTWord(9)
	var got uint64
	if err := tm.Atomic(th, tm.With(tm.ReadOnly()), func(tx *stm.Tx) { got = v.Load(tx) }); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got != 9 {
		t.Fatalf("Load = %d", got)
	}
	if rt.Stats().ROFastCommits != 1 {
		t.Fatalf("ROFastCommits = %d, want 1", rt.Stats().ROFastCommits)
	}
}

func TestMaxRetriesOptionPropagates(t *testing.T) {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT})
	th := rt.NewThread()
	tries := 0
	err := tm.Atomic(th, tm.With(tm.MaxRetries(2)), func(tx *stm.Tx) {
		tries++
		tx.Abort()
	})
	if !errors.Is(err, stm.ErrRetryLimit) {
		t.Fatalf("err = %v, want ErrRetryLimit", err)
	}
	if tries != 2 {
		t.Fatalf("body ran %d times, want 2", tries)
	}
}

// TestDeprecatedWrappersEquivalent is the behavioral-equivalence test for the
// old core.Ctx entry points: each deprecated wrapper must do exactly what its
// tm replacement does — same effects, same stats deltas, same kind of
// transaction.
func TestDeprecatedWrappersEquivalent(t *testing.T) {
	type counters struct {
		commits, startSerial, roFast uint64
	}
	// run executes one workload shape through either the deprecated wrappers
	// (legacy=true) or the tm package, on a fresh runtime, and returns the
	// final word value plus the stats counters.
	run := func(legacy bool) (uint64, counters) {
		rt := stm.New(stm.Config{Algorithm: stm.MLWT})
		ctx := core.New(rt).NewContext()
		th := ctx.Thread()
		v := stm.NewTWord(0)

		if legacy {
			_ = ctx.Atomic(func(tx *stm.Tx) { v.Store(tx, 5) })
			_ = ctx.Relaxed(func(tx *stm.Tx) { v.Store(tx, v.Load(tx)*2) })
			_ = ctx.RelaxedStartSerial(func(tx *stm.Tx) { v.Store(tx, v.Load(tx)+1) })
			ctx.StoreWord(v, ctx.LoadWord(v)+ctx.AddWord(v, 3))
		} else {
			_ = tm.Atomic(th, tm.Options{}, func(tx *stm.Tx) { v.Store(tx, 5) })
			_ = tm.Relaxed(th, tm.Options{}, func(tx *stm.Tx) { v.Store(tx, v.Load(tx)*2) })
			_ = tm.Relaxed(th, tm.With(tm.StartSerial()), func(tx *stm.Tx) { v.Store(tx, v.Load(tx)+1) })
			tm.StoreWord(th, v, tm.LoadWord(th, v)+tm.AddWord(th, v, 3))
		}
		s := rt.Stats()
		return v.LoadDirect(), counters{s.Commits, s.StartSerial, s.ROFastCommits}
	}

	oldVal, oldStats := run(true)
	newVal, newStats := run(false)
	if oldVal != newVal {
		t.Errorf("final value: deprecated wrappers %d, tm %d", oldVal, newVal)
	}
	if oldStats != newStats {
		t.Errorf("stats deltas: deprecated wrappers %+v, tm %+v", oldStats, newStats)
	}
}
