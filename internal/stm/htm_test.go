package stm

import (
	"runtime"
	"sync"
	"testing"
)

func TestHTMBasicCommit(t *testing.T) {
	rt := New(Config{Algorithm: HTM})
	th := rt.NewThread()
	w := NewTWord(1)
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		w.Store(tx, w.Load(tx)+1)
	})
	if w.LoadDirect() != 2 {
		t.Errorf("w = %d", w.LoadDirect())
	}
	s := rt.Stats()
	if s.Commits != 1 || s.HTMFallbacks != 0 || s.HTMCapacityAborts != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestHTMCapacityFallback(t *testing.T) {
	rt := New(Config{Algorithm: HTM, HTMCapacity: 8, HTMRetries: 2})
	th := rt.NewThread()
	words := make([]*TWord, 32)
	for i := range words {
		words[i] = NewTWord(0)
	}
	// A transaction touching 32 locations cannot fit in an 8-location
	// hardware transaction: it must capacity-abort HTMRetries times and then
	// complete via the lock fallback.
	mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
		for _, w := range words {
			w.Store(tx, w.Load(tx)+1)
		}
	})
	for i, w := range words {
		if w.LoadDirect() != 1 {
			t.Fatalf("words[%d] = %d", i, w.LoadDirect())
		}
	}
	s := rt.Stats()
	if s.HTMCapacityAborts != 2 {
		t.Errorf("capacity aborts = %d, want 2 (HTMRetries)", s.HTMCapacityAborts)
	}
	if s.HTMFallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", s.HTMFallbacks)
	}
	if s.SerialCommits != 1 {
		t.Errorf("serial commits = %d, want 1 (the fallback)", s.SerialCommits)
	}
}

func TestHTMAbortedBySerialWriter(t *testing.T) {
	rt := New(Config{Algorithm: HTM, HTMRetries: 100})
	w := NewTWord(0)

	inTx := make(chan struct{})
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	attempts := 0
	go func() {
		defer wg.Done()
		th := rt.NewThread()
		mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
			attempts++
			_ = w.Load(tx)
			if attempts == 1 {
				close(inTx)
				<-proceed // a serial transaction runs while we are in flight
			}
			w.Store(tx, w.Load(tx)+1)
		})
	}()
	<-inTx
	// A relaxed start-serial transaction acquires the lock: the in-flight
	// hardware transaction must abort at its commit subscription check.
	th := rt.NewThread()
	serDone := make(chan struct{})
	go func() {
		mustRun(t, th, Props{Kind: Relaxed, StartSerial: true}, func(tx *Tx) {
			w.Store(tx, 100)
		})
		close(serDone)
	}()
	<-serDone
	close(proceed)
	wg.Wait()
	if attempts < 2 {
		t.Errorf("attempts = %d; the serial writer should have aborted attempt 1", attempts)
	}
	if got := w.LoadDirect(); got != 101 {
		t.Errorf("w = %d, want 101 (serial write then +1)", got)
	}
}

func TestHTMConcurrentCounter(t *testing.T) {
	rt := New(Config{Algorithm: HTM, HTMRetries: 4})
	ctr := NewTWord(0)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 1500; i++ {
				mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
					ctr.Store(tx, ctr.Load(tx)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := ctr.LoadDirect(); got != 9000 {
		t.Errorf("ctr = %d, want 9000", got)
	}
}

func TestHTMForcesSerialLockOn(t *testing.T) {
	rt := New(Config{Algorithm: HTM, NoSerialLock: true})
	if rt.Config().NoSerialLock {
		t.Error("HTM must keep the serial lock (it is the fallback path)")
	}
}

// TestHTMSerializationPoisonsThroughput demonstrates the §5 claim: with
// frequent serialized transactions, hardware transactions keep aborting on
// the lock subscription and falling back, so almost everything ends up
// serial.
func TestHTMSerializationPoisonsThroughput(t *testing.T) {
	rt := New(Config{Algorithm: HTM, HTMRetries: 2})
	w := NewTWord(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < 500; i++ {
				if g == 0 {
					// A stream of relaxed/serial transactions.
					mustRun(t, th, Props{Kind: Relaxed, StartSerial: true}, func(tx *Tx) {
						w.Store(tx, w.Load(tx)+1)
					})
				} else {
					mustRun(t, th, Props{Kind: Atomic}, func(tx *Tx) {
						v := w.Load(tx)
						// Yield mid-transaction so the serial stream overlaps
						// us (on one core, overlap requires preemption).
						runtime.Gosched()
						w.Store(tx, v+1)
					})
				}
			}
		}()
	}
	wg.Wait()
	if got := w.LoadDirect(); got != 2000 {
		t.Fatalf("w = %d, want 2000", got)
	}
	s := rt.Stats()
	if s.HTMFallbacks == 0 {
		t.Error("expected lock fallbacks under a serialized workload")
	}
	t.Logf("commits=%d serial=%d fallbacks=%d capacity-aborts=%d",
		s.Commits, s.SerialCommits, s.HTMFallbacks, s.HTMCapacityAborts)
}
