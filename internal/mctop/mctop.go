// Package mctop implements the data layer of cmd/mctop: it polls a live
// tm-memcached server over the plain text protocol (stats, stats
// fingerprint, stats tmctl, stats eventloop), parses the STAT lines into a
// Frame, and renders a terminal dashboard of shards × (ops, hot keys, abort
// ratio, controller rung, queue depths). It needs nothing but the wire
// protocol, so it works against any build of the server — fingerprinting or
// the event loop being off just blanks those columns.
package mctop

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// HotKey is one entry of a shard's decayed top-K sketch.
type HotKey struct {
	Key   string
	Count uint64
	Err   uint64
}

// ShardRow is everything the dashboard shows for one TM shard.
type ShardRow struct {
	Ops           uint64
	Reads         uint64
	Writes        uint64
	Deletes       uint64
	Hits          uint64
	Misses        uint64
	Concentration float64
	HotKeys       []HotKey
	AbortConflict uint64
	AbortSerial   uint64 // serial-evidence escalations, all causes summed

	// From stats tmctl (zero values when the controller is off).
	Mode       string
	Algorithm  string
	AbortRatio float64
	HaveCtl    bool
}

// Frame is one poll of the server.
type Frame struct {
	When    time.Time
	Version string

	// Cumulative command counters (rates are computed between frames).
	CmdGet    uint64
	CmdSet    uint64
	TMCommits uint64
	TMAborts  uint64
	CurrItems uint64

	HasFP         bool // server knows the fingerprint surface
	FingerprintOn bool
	Shards        []ShardRow

	// Transport telemetry (stats eventloop); HasEL false when the server
	// runs the classic transport.
	HasEL       bool
	Workers     int
	Conns       int
	SharedDepth int
	OverflowLen int
	Spills      uint64
	AffineDepth []int
	WorkerBusy  []float64
	PollWakeups uint64
	PollProbes  uint64
	PollSynth   uint64
}

// statsQuery sends one "stats …" command and streams every STAT line into
// visit until the terminating END.
func statsQuery(rw *bufio.ReadWriter, sub string, visit func(key, val string)) error {
	cmd := "stats"
	if sub != "" {
		cmd += " " + sub
	}
	if _, err := rw.WriteString(cmd + "\r\n"); err != nil {
		return err
	}
	if err := rw.Flush(); err != nil {
		return err
	}
	for {
		line, err := rw.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" || strings.HasPrefix(line, "ERROR") {
			return nil
		}
		rest, ok := strings.CutPrefix(line, "STAT ")
		if !ok {
			continue
		}
		key, val, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		visit(key, val)
	}
}

func atoiU(s string) uint64 {
	v, _ := strconv.ParseUint(s, 10, 64)
	return v
}

func atoiF(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// shardField matches keys like "shard_3_abort_conflicts", returning
// (3, "abort_conflicts", true). The field keeps all its underscores.
func shardField(key string) (int, string, bool) {
	rest, ok := strings.CutPrefix(key, "shard_")
	if !ok {
		return 0, "", false
	}
	idx, field, ok := strings.Cut(rest, "_")
	if !ok {
		return 0, "", false
	}
	n, err := strconv.Atoi(idx)
	if err != nil || n < 0 || n > 1<<16 {
		return 0, "", false
	}
	return n, field, true
}

// Fetch polls addr once. The timeout covers dial plus all four queries.
func Fetch(addr string, timeout time.Duration) (*Frame, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
	f := &Frame{When: time.Now()}

	if err := statsQuery(rw, "", func(k, v string) {
		switch k {
		case "version":
			f.Version = v
		case "cmd_get":
			f.CmdGet = atoiU(v)
		case "cmd_set":
			f.CmdSet = atoiU(v)
		case "tm_transactions":
			f.TMCommits = atoiU(v)
		case "tm_aborts":
			f.TMAborts = atoiU(v)
		case "curr_items":
			f.CurrItems = atoiU(v)
		}
	}); err != nil {
		return nil, err
	}

	shard := func(i int) *ShardRow {
		for len(f.Shards) <= i {
			f.Shards = append(f.Shards, ShardRow{})
		}
		return &f.Shards[i]
	}
	if err := statsQuery(rw, "fingerprint", func(k, v string) {
		switch k {
		case "fingerprint":
			f.HasFP = true
			f.FingerprintOn = v == "1"
			return
		case "shards":
			if n := int(atoiU(v)); n > 0 {
				shard(n - 1)
			}
			return
		}
		i, field, ok := shardField(k)
		if !ok {
			return
		}
		s := shard(i)
		switch field {
		case "ops":
			s.Ops = atoiU(v)
		case "reads":
			s.Reads = atoiU(v)
		case "writes":
			s.Writes = atoiU(v)
		case "deletes":
			s.Deletes = atoiU(v)
		case "hits":
			s.Hits = atoiU(v)
		case "misses":
			s.Misses = atoiU(v)
		case "concentration":
			s.Concentration = atoiF(v)
		case "abort_conflicts":
			s.AbortConflict = atoiU(v)
		case "abort_start_serial", "abort_abort_serial", "abort_watchdog":
			s.AbortSerial += atoiU(v)
		default:
			if strings.HasPrefix(field, "hot_") {
				// value layout: "<count> <err> <key>" — key last, so keys
				// with no spaces parse unambiguously.
				parts := strings.SplitN(v, " ", 3)
				if len(parts) == 3 {
					s.HotKeys = append(s.HotKeys, HotKey{
						Count: atoiU(parts[0]),
						Err:   atoiU(parts[1]),
						Key:   parts[2],
					})
				}
			}
		}
	}); err != nil {
		return nil, err
	}

	if err := statsQuery(rw, "tmctl", func(k, v string) {
		if k == "tmctl" {
			return
		}
		i, field, ok := shardField(k)
		if !ok {
			return
		}
		s := shard(i)
		switch field {
		case "mode":
			s.Mode, s.HaveCtl = v, true
		case "algorithm":
			s.Algorithm = v
		case "abort_ratio":
			s.AbortRatio = atoiF(v)
		}
	}); err != nil {
		return nil, err
	}

	if err := statsQuery(rw, "eventloop", func(k, v string) {
		switch k {
		case "eventloop":
			f.HasEL = v == "1"
		case "workers":
			f.Workers = int(atoiU(v))
		case "conns":
			f.Conns = int(atoiU(v))
		case "shared_depth":
			f.SharedDepth = int(atoiU(v))
		case "overflow_len":
			f.OverflowLen = int(atoiU(v))
		case "event_overflow_spills":
			f.Spills = atoiU(v)
		case "poller_wakeups":
			f.PollWakeups = atoiU(v)
		case "poller_probes":
			f.PollProbes = atoiU(v)
		case "poller_synthesized":
			f.PollSynth = atoiU(v)
		default:
			if rest, ok := strings.CutPrefix(k, "affine_"); ok {
				if idx, ok := strings.CutSuffix(rest, "_depth"); ok {
					if n, err := strconv.Atoi(idx); err == nil && n >= 0 {
						for len(f.AffineDepth) <= n {
							f.AffineDepth = append(f.AffineDepth, 0)
						}
						f.AffineDepth[n] = int(atoiU(v))
					}
				}
			}
			if rest, ok := strings.CutPrefix(k, "worker_"); ok {
				if idx, ok := strings.CutSuffix(rest, "_busy"); ok {
					if n, err := strconv.Atoi(idx); err == nil && n >= 0 {
						for len(f.WorkerBusy) <= n {
							f.WorkerBusy = append(f.WorkerBusy, 0)
						}
						f.WorkerBusy[n] = atoiF(v)
					}
				}
			}
		}
	}); err != nil {
		return nil, err
	}
	return f, nil
}

// rate renders a per-second counter delta between two frames, "-" when no
// previous frame exists.
func rate(cur, prev uint64, dt float64) string {
	if dt <= 0 {
		return "-"
	}
	if cur < prev {
		return "0/s" // counter reset mid-interval
	}
	return fmt.Sprintf("%.0f/s", float64(cur-prev)/dt)
}

// Render draws one dashboard frame. prev may be nil (first frame: rates
// render as "-"); the caller owns screen clearing.
func Render(cur, prev *Frame) string {
	var b strings.Builder
	dt := 0.0
	var p Frame
	if prev != nil {
		p = *prev
		dt = cur.When.Sub(prev.When).Seconds()
	}
	fmt.Fprintf(&b, "mctop — %s  items=%d  get=%s set=%s  tm_commit=%s tm_abort=%s\n",
		cur.Version, cur.CurrItems,
		rate(cur.CmdGet, p.CmdGet, dt), rate(cur.CmdSet, p.CmdSet, dt),
		rate(cur.TMCommits, p.TMCommits, dt), rate(cur.TMAborts, p.TMAborts, dt))
	if cur.HasEL {
		fmt.Fprintf(&b, "transport: event-loop  workers=%d conns=%d sharedq=%d overflow=%d spills=%d",
			cur.Workers, cur.Conns, cur.SharedDepth, cur.OverflowLen, cur.Spills)
		if len(cur.AffineDepth) > 0 {
			depths := make([]string, len(cur.AffineDepth))
			for i, d := range cur.AffineDepth {
				depths[i] = strconv.Itoa(d)
			}
			fmt.Fprintf(&b, " affine=[%s]", strings.Join(depths, " "))
		}
		fmt.Fprintf(&b, "\npoller: wakeups=%d probes=%d synthesized=%d", cur.PollWakeups, cur.PollProbes, cur.PollSynth)
		if len(cur.WorkerBusy) > 0 {
			busy := make([]string, len(cur.WorkerBusy))
			for i, f := range cur.WorkerBusy {
				busy[i] = fmt.Sprintf("%.0f%%", f*100)
			}
			fmt.Fprintf(&b, "  busy=[%s]", strings.Join(busy, " "))
		}
		b.WriteByte('\n')
	} else {
		b.WriteString("transport: classic (goroutine per connection)\n")
	}
	if !cur.HasFP {
		b.WriteString("fingerprint: unavailable on this server\n")
		return b.String()
	}
	if !cur.FingerprintOn {
		b.WriteString("fingerprint: DISABLED (showing last collected windows)\n")
	}
	fmt.Fprintf(&b, "%-5s %10s %8s %8s %6s %6s %5s %-8s %-6s %s\n",
		"shard", "ops(win)", "reads", "writes", "conc", "abrt", "serl", "mode", "algo", "hot keys")
	for i := range cur.Shards {
		s := &cur.Shards[i]
		mode, algo := s.Mode, s.Algorithm
		if !s.HaveCtl {
			mode, algo = "-", "-"
		}
		hot := make([]string, 0, 3)
		for j, hk := range s.HotKeys {
			if j == 3 {
				break
			}
			hot = append(hot, fmt.Sprintf("%s:%d", hk.Key, hk.Count))
		}
		fmt.Fprintf(&b, "%-5d %10d %8d %8d %5.2f %6d %5d %-8s %-6s %s\n",
			i, s.Ops, s.Reads, s.Writes, s.Concentration,
			s.AbortConflict, s.AbortSerial, mode, algo, strings.Join(hot, " "))
	}
	return b.String()
}
