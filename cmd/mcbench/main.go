// Command mcbench regenerates the paper's figures and tables.
//
//	mcbench -all                 # everything, scaled-down defaults
//	mcbench -fig 9               # one figure
//	mcbench -table 1             # one table
//	mcbench -ratios              # the §4 abort-ratio quotes
//	mcbench -ro-smoke            # read-only fast-path smoke benchmark (JSON)
//	mcbench -all -ops 625000 -threads 1,2,4,8,12 -trials 5   # paper scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/engine"
)

func main() {
	var (
		figID      = flag.Int("fig", 0, "figure to reproduce (4, 6, 8, 9, 10, 11)")
		tableID    = flag.Int("table", 0, "table to reproduce (1-4)")
		all        = flag.Bool("all", false, "reproduce every figure and table")
		ratios     = flag.Bool("ratios", false, "report the §4 abort ratios")
		profBranch = flag.String("profile", "", "run one branch with tracing on and print the full observability report: causes, conflict heat map, latency (§6 tooling)")
		ops        = flag.Int("ops", 20000, "operations per thread (paper: 625000)")
		threads    = flag.String("threads", "1,2,4,8,12", "comma-separated thread counts")
		trials     = flag.Int("trials", 1, "trials per point, averaged (paper: 5)")
		keyspace   = flag.Int("keyspace", 4096, "distinct keys")
		vsize      = flag.Int("value-size", 1024, "value size")
		zipf       = flag.Bool("zipf", false, "Zipf-skewed key popularity (exploratory; the paper is uniform)")
		roSmoke    = flag.Bool("ro-smoke", false, "run the read-only fast-path smoke benchmark (per-key GETs vs batched multi-get at ~9:1 GET:SET) and write -ro-out")
		roBranch   = flag.String("ro-branch", "it-oncommit", "branch for -ro-smoke")
		roOut      = flag.String("ro-out", "BENCH_ro_fastpath.json", "output file for -ro-smoke")
		shardsStr  = flag.String("shards", "", "comma-separated shard counts (e.g. 1,2,4,8): sweep TM domain counts at the highest -threads value and write -shards-out")
		shardsOut  = flag.String("shards-out", "BENCH_shards.json", "output file for -shards")
		traceOver  = flag.Bool("trace-overhead", false, "measure request-tracing overhead (baseline vs disabled vs sampled vs full) through the text protocol and write -trace-out")
		traceOut   = flag.String("trace-out", "BENCH_trace_overhead.json", "output file for -trace-overhead")
		traceTrial = flag.Int("trace-trials", 3, "trials per tracing configuration (median reported)")
		fpOver     = flag.Bool("fingerprint-overhead", false, "measure workload-fingerprinting overhead (disabled vs off-after-enable vs enabled, with a repeat run bounding the measurement floor) and write -fingerprint-out")
		fpOut      = flag.String("fingerprint-out", "BENCH_fingerprint_overhead.json", "output file for -fingerprint-overhead")
		fpTrials   = flag.Int("fingerprint-trials", 3, "trials per fingerprinting configuration (median reported)")
		tmctlStorm = flag.Bool("tmctl-storm", false, "inject a single-hot-key contention storm against the feedback controller and write -tmctl-out")
		tmctlOut   = flag.String("tmctl-out", "BENCH_tmctl.json", "output file for -tmctl-storm")
		tmctlSeed  = flag.Uint64("tmctl-seed", 1, "fault-injector seed for -tmctl-storm")
		txn        = flag.Bool("txn", false, "benchmark wire-transaction commits (single-key / same-shard / cross-shard shapes plus a conflict-rate sweep) and write -txn-out")
		txnBranch  = flag.String("txn-branch", "it-max", "branch for -txn (must support wire transactions: IT family)")
		txnShards  = flag.Int("txn-shards", 4, "shard count for -txn")
		txnOut     = flag.String("txn-out", "BENCH_txn.json", "output file for -txn")
		connSweep  = flag.Bool("conns", false, "connection-scale sweep: hold idle connection ladders against both transports (event-loop vs goroutine-per-conn), measure RSS/goroutines per rung plus an active mix, write -conns-out")
		connPoints = flag.String("conns-points", "1000,10000,100000", "comma-separated idle connection counts for -conns (rungs over RLIMIT_NOFILE are recorded as skipped)")
		connShards = flag.Int("conns-shards", 4, "shard count for -conns")
		connWorker = flag.Int("conns-workers", 0, "event-loop worker count for -conns (0 = server default)")
		connActive = flag.Int("conns-active", 64, "active-mix connection count for -conns")
		connOps    = flag.Int("conns-active-ops", 1500, "active-mix request-response rounds per connection for -conns")
		connOut    = flag.String("conns-out", "BENCH_conns.json", "output file for -conns")
		connAgent  = flag.Bool("conns-agent", false, "internal: run as the connection-holding agent for -conns")
		connAddr   = flag.String("conns-addr", "", "internal: server address for -conns-agent")
		connN      = flag.Int("conns-n", 0, "internal: connections for -conns-agent to hold")
	)
	flag.Parse()

	// Agent mode: forked by -conns before anything else so a bare re-exec
	// never falls through into the benchmark driver.
	if *connAgent {
		if err := bench.RunConnAgent(*connAddr, *connN); err != nil {
			log.Fatal(err)
		}
		return
	}

	var ths []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			log.Fatalf("bad -threads %q", *threads)
		}
		ths = append(ths, n)
	}
	o := bench.Options{
		Threads:      ths,
		OpsPerThread: *ops,
		Trials:       *trials,
		KeySpace:     *keyspace,
		ValueSize:    *vsize,
		Zipf:         *zipf,
	}

	showFig := func(id int) {
		fig, err := bench.RunFigure(id, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fig)
	}
	showTable := func(id int) {
		tab, err := bench.RunTable(id, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab)
	}
	showRatios := func() {
		fmt.Printf("§4 abort ratios at %d threads:\n", ths[len(ths)-1])
		for _, r := range bench.RunRatios(o) {
			fmt.Printf("  %-14s %6.2f aborts/commit   abort-rate variance %.5f\n",
				r.Label, r.AbortsPerCommit, r.RateVariance)
		}
		fmt.Println()
	}

	ran := false
	if *all {
		ran = true
		for _, id := range []int{4, 6, 8, 9, 10, 11} {
			showFig(id)
		}
		for _, id := range []int{1, 2, 3, 4} {
			showTable(id)
		}
		showRatios()
	}
	if *figID != 0 {
		ran = true
		showFig(*figID)
	}
	if *tableID != 0 {
		ran = true
		showTable(*tableID)
	}
	if *ratios && !*all {
		ran = true
		showRatios()
	}
	if *roSmoke {
		ran = true
		b, err := engine.ParseBranch(*roBranch)
		if err != nil {
			log.Fatal(err)
		}
		res := bench.RunROFastpath(b, ths[len(ths)-1], o)
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*roOut, out, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ro fast path on %s at %d threads: per-key %.0f keys/s, batched %.0f keys/s (%.2fx), %d ro_fast_commits, %d ro_upgrades -> %s\n",
			res.Branch, res.Threads, res.PerKeyKeysPerS, res.BatchedKeysPerS, res.Speedup, res.ROFastCommits, res.ROUpgrades, *roOut)
	}
	if *shardsStr != "" {
		ran = true
		var counts []int
		for _, part := range strings.Split(*shardsStr, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				log.Fatalf("bad -shards %q", *shardsStr)
			}
			counts = append(counts, n)
		}
		b, err := engine.ParseBranch(*roBranch)
		if err != nil {
			log.Fatal(err)
		}
		res := bench.RunShardSweep(b, ths[len(ths)-1], counts, o)
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*shardsOut, out, 0o644); err != nil {
			log.Fatal(err)
		}
		for _, p := range res.Points {
			fmt.Printf("shards=%d: %.0f ops/s (%.2fx), %d aborts, %d serial starts, cross-shard orec conflicts %d\n",
				p.Shards, p.OpsPerSec, p.Speedup, p.Aborts, p.StartSerial, p.CrossShardOrecConflicts)
		}
		fmt.Printf("wrote %s\n", *shardsOut)
	}
	if *traceOver {
		ran = true
		b, err := engine.ParseBranch(*roBranch)
		if err != nil {
			log.Fatal(err)
		}
		res := bench.RunTraceOverhead(b, ths[len(ths)-1], *traceTrial, o)
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*traceOut, out, 0o644); err != nil {
			log.Fatal(err)
		}
		for _, p := range res.Points {
			fmt.Printf("trace=%-8s %10.0f ops/s  delta vs baseline %+.2f%%\n",
				p.Config, p.OpsPerSec, p.DeltaPct)
		}
		fmt.Printf("wrote %s\n", *traceOut)
	}
	if *fpOver {
		ran = true
		b, err := engine.ParseBranch(*roBranch)
		if err != nil {
			log.Fatal(err)
		}
		res := bench.RunFingerprintOverhead(b, ths[len(ths)-1], *fpTrials, o)
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*fpOut, out, 0o644); err != nil {
			log.Fatal(err)
		}
		for _, p := range res.Points {
			fmt.Printf("fingerprint=%-17s %10.0f ops/s  delta vs disabled %+.2f%%\n",
				p.Config, p.OpsPerSec, p.DeltaPct)
		}
		fmt.Printf("measurement floor %.2f%%; wrote %s\n", res.FloorPct, *fpOut)
	}
	if *tmctlStorm {
		ran = true
		b, err := engine.ParseBranch(*roBranch)
		if err != nil {
			log.Fatal(err)
		}
		res := bench.RunTMCtlStorm(b, bench.TMCtlStormOptions{
			Threads:  ths[len(ths)-1],
			Seed:     *tmctlSeed,
			KeySpace: *keyspace,
		})
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*tmctlOut, out, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tmctl storm on %s: hot shard %d degraded to %s after %dms, healed %dms after the storm (base restored: %v); storm p99 max %.2fms, recovered p99 %.2fms; %d degrades / %d promotes -> %s\n",
			res.Branch, res.HotShard, res.DeepestMode, res.DegradeAfterMs, res.HealAfterMs, res.BaseRestored,
			res.StormP99MaxMs, res.RecoveredP99Ms, res.Degrades, res.Promotes, *tmctlOut)
	}
	if *txn {
		ran = true
		b, err := engine.ParseBranch(*txnBranch)
		if err != nil {
			log.Fatal(err)
		}
		probe := engine.New(engine.Config{Branch: b, Shards: *txnShards, HashPower: 8})
		supported := probe.TxSupported()
		if !supported {
			log.Fatalf("branch %s does not support wire transactions (need an IT-family branch without -nolock)", b)
		}
		res := bench.RunTxnBench(b, ths[len(ths)-1], *txnShards, o)
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*txnOut, out, 0o644); err != nil {
			log.Fatal(err)
		}
		for _, s := range res.Shapes {
			fmt.Printf("txn %-11s %10.0f tx/s  conflicts %5.2f%%  serial fallbacks %5.2f%%\n",
				s.Shape, s.TxPerSec, 100*s.ConflictRate, 100*s.SerialFallbackRate)
		}
		for _, p := range res.ConflictSweep {
			fmt.Printf("txn hot=%-5d conflicts %5.2f%%  serial fallbacks %5.2f%%\n",
				p.HotKeys, 100*p.ConflictRate, 100*p.SerialFallbackRate)
		}
		fmt.Printf("wrote %s\n", *txnOut)
	}
	if *connSweep {
		ran = true
		b, err := engine.ParseBranch(*roBranch)
		if err != nil {
			log.Fatal(err)
		}
		var pts []int
		for _, part := range strings.Split(*connPoints, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				log.Fatalf("bad -conns-points %q", *connPoints)
			}
			pts = append(pts, n)
		}
		exe, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		res, err := bench.RunConnScale(b, *connShards, *connWorker, pts, *connActive, *connOps, exe)
		if err != nil {
			log.Fatal(err)
		}
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*connOut, out, 0o644); err != nil {
			log.Fatal(err)
		}
		for _, tr := range res.Transports {
			for _, p := range tr.Points {
				if p.Skipped {
					fmt.Printf("%-18s %7d conns: skipped (%s)\n", tr.Transport, p.RequestedConns, p.SkipReason)
					continue
				}
				fmt.Printf("%-18s %7d conns: rss +%d KB (%.0f B/conn), goroutines %d -> %d\n",
					tr.Transport, p.HeldConns, p.RSSDeltaKB, p.RSSPerConnB,
					p.GoroutinesBaseline, p.GoroutinesHeld)
			}
			fmt.Printf("%-18s active mix %d conns: %.0f ops/s, p50 %.3fms p99 %.3fms\n",
				tr.Transport, tr.Active.Conns, tr.Active.OpsPerSec, tr.Active.P50Ms, tr.Active.P99Ms)
		}
		fmt.Printf("rss ratio (event/goroutine) at %d conns: %.3f; active tput ratio %.3f -> %s\n",
			res.RSSRatioAtConns, res.RSSRatio, res.ActiveTputRatio, *connOut)
	}
	if *profBranch != "" {
		ran = true
		b, err := engine.ParseBranch(*profBranch)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := bench.RunProfiled(b, ths[len(ths)-1], o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("branch %s at %d threads:\n%s", b, ths[len(ths)-1], rep)
	}
	if !ran {
		flag.Usage()
	}
}
