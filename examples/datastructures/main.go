// Datastructures: writing new concurrent code directly against the TM API —
// the paper's other adoption path ("it allows programmers to create new
// software from scratch that is designed around transactional constructs").
//
// A transactional treap, hash set and queue are composed in single atomic
// transactions: a work-stealing pipeline moves keys between structures with
// an invariant (every key lives in exactly one place) that holds at every
// instant, with no locks in sight.
//
//	go run ./examples/datastructures
package main

import (
	"fmt"
	"sync"

	"repro/internal/stm"
	"repro/internal/tmds"
)

func main() {
	rt := stm.New(stm.Config{Algorithm: stm.MLWT, CM: stm.CMSerialize})

	pending := tmds.NewQueue() // keys waiting to be indexed
	index := tmds.NewTreap()   // ordered index
	done := tmds.NewHashSet(6) // processed set

	// Producers enqueue keys.
	const producers, perP = 3, 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			for i := 0; i < perP; i++ {
				k := uint64(p*perP + i)
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					pending.Push(tx, k)
				})
			}
		}()
	}

	// Consumers move each key queue -> treap -> hash set, each hop one
	// atomic transaction, so a key is never in two places or none.
	var moved sync.Map
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.NewThread()
			idle := 0
			for idle < 2000 {
				var k uint64
				var got bool
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					v, ok := pending.Pop(tx)
					if ok {
						k = v.(uint64)
						index.Insert(tx, k, nil)
					}
					got = ok
				})
				if !got {
					idle++
					continue
				}
				idle = 0
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					if index.Remove(tx, k) {
						done.Insert(tx, k)
					}
				})
				moved.Store(k, true)
			}
		}()
	}
	wg.Wait()

	// Drain anything still in flight, then audit.
	th := rt.NewThread()
	_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
		for {
			v, ok := pending.Pop(tx)
			if !ok {
				break
			}
			done.Insert(tx, v.(uint64))
		}
		for _, k := range index.Keys(tx) {
			index.Remove(tx, k)
			done.Insert(tx, k)
		}
	})

	var total uint64
	var invariantOK bool
	_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
		total = done.Len(tx)
		invariantOK = pending.Len(tx) == 0 && index.Len(tx) == 0
	})
	s := rt.Stats()
	fmt.Printf("keys processed: %d / %d (pipeline drained: %v)\n",
		total, producers*perP, invariantOK)
	fmt.Printf("transactions: %d commits, %d aborts (%.2f aborts/commit)\n",
		s.Commits, s.Aborts, s.AbortsPerCommit())
	if total != producers*perP || !invariantOK {
		fmt.Println("INVARIANT VIOLATION — this should be impossible")
	}
}
