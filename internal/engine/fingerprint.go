package engine

import (
	"time"

	"repro/internal/fingerprint"
)

// Workload fingerprinting: the engine half of internal/fingerprint.
//
// Cost contract (same as tracing): while disabled, every op path pays
// exactly one atomic pointer load (shard.fp, nil) and nothing else. While
// enabled, each shardWorker lazily binds a private single-writer recorder
// to the observer generation it sees, then records lock-free.

// fpRecord samples one engine operation into the shard's fingerprint.
// size < 0 means no value was involved; hit carries found/stored semantics.
func (w *shardWorker) fpRecord(op fingerprint.Op, hv uint64, key []byte, size int, hit bool) {
	fps := w.c.fp.Load() // the one atomic load on the disabled path
	if fps == nil {
		return
	}
	if w.fpFor != fps {
		w.fpRec = fps.Recorder()
		w.fpFor = fps
	}
	w.fpRec.Record(op, hv, key, size, hit)
}

// EnableFingerprint turns on workload fingerprinting and returns the
// observer: one per cache, created on first call (repeat calls return the
// same one), with a per-shard fingerprint each shard's op paths feed. A
// 1 Hz tick goroutine drives the decay windows and mirrors each shard
// runtime's abort-cause deltas into its fingerprint. When a tmctl
// controller is configured, the observer is attached as its concentration
// source, arming the hot-key gate.
func (c *Cache) EnableFingerprint() *fingerprint.Observer {
	c.fpMu.Lock()
	defer c.fpMu.Unlock()
	o := c.fpObs.Load()
	if o == nil {
		o = fingerprint.New(len(c.shards))
		c.fpObs.Store(o)
	}
	for i, s := range c.shards {
		s.fp.Store(o.Shard(i))
	}
	c.fpLive.Store(o)
	if c.ctl != nil {
		c.ctl.SetFingerprint(o)
	}
	if c.fpStop == nil {
		stop := make(chan struct{})
		c.fpStop = stop
		c.fpWG.Add(1)
		go c.fpTickLoop(stop, o)
	}
	return o
}

// DisableFingerprint stops sampling: op paths go back to the single nil
// load, the tick goroutine halts, and the tmctl gate loses its source (it
// falls back to ungated threshold decisions). Collected windows stay
// queryable through Fingerprint.
func (c *Cache) DisableFingerprint() {
	c.fpMu.Lock()
	defer c.fpMu.Unlock()
	for _, s := range c.shards {
		s.fp.Store(nil)
	}
	c.fpLive.Store(nil)
	if c.ctl != nil {
		c.ctl.SetFingerprint(nil)
	}
	if c.fpStop != nil {
		close(c.fpStop)
		c.fpStop = nil
	}
}

// Fingerprint returns the workload observer, or nil if fingerprinting was
// never enabled on this cache.
func (c *Cache) Fingerprint() *fingerprint.Observer { return c.fpObs.Load() }

// FingerprintEnabled reports whether sampling is currently on.
func (c *Cache) FingerprintEnabled() bool { return c.fpLive.Load() != nil }

// fingerprintLive returns the observer only while sampling is enabled —
// the gate the wire-transaction phase recorders load once per commit.
func (c *Cache) fingerprintLive() *fingerprint.Observer { return c.fpLive.Load() }

// fpTickLoop is the 1 Hz fingerprint clock: it folds each shard runtime's
// abort-cause counter deltas into the decayed abort-mix window, then
// advances the observer's decay tick. It survives Disable/Enable cycles
// only in the sense that Disable stops it and the next Enable starts a
// fresh one.
func (c *Cache) fpTickLoop(stop chan struct{}, o *fingerprint.Observer) {
	defer c.fpWG.Done()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	prev := c.ShardStats() // nil on lock branches: no abort mix to mirror
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		cur := c.ShardStats()
		for i := range cur {
			sh := o.Shard(i)
			d, p := cur[i], prev[i]
			sh.AddAborts(fingerprint.AbortConflict, ctrDelta(d.Aborts, p.Aborts))
			sh.AddAborts(fingerprint.AbortStartSerial, ctrDelta(d.StartSerial, p.StartSerial))
			sh.AddAborts(fingerprint.AbortAbortSerial, ctrDelta(d.AbortSerial, p.AbortSerial))
			sh.AddAborts(fingerprint.AbortInflight, ctrDelta(d.InFlightSwitch, p.InFlightSwitch))
			sh.AddAborts(fingerprint.AbortWatchdog, ctrDelta(d.WatchdogSerializes, p.WatchdogSerializes))
		}
		prev = cur
		o.Tick()
	}
}

// ctrDelta is a clamped counter difference: a stats reset between samples
// makes cur < prev, which must read as "no new events", not underflow.
func ctrDelta(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// Fingerprint exposes the workload observer to the protocol layer (nil if
// never enabled).
func (w *Worker) Fingerprint() *fingerprint.Observer { return w.c.Fingerprint() }

// FingerprintEnabled reports whether sampling is currently on.
func (w *Worker) FingerprintEnabled() bool { return w.c.FingerprintEnabled() }

// FingerprintLive returns the observer only while sampling is on — the
// protocol layer's gate for recording the txbegin→txcommit queue phase.
func (w *Worker) FingerprintLive() *fingerprint.Observer { return w.c.fingerprintLive() }

// EnableFingerprint turns sampling on through a worker handle (the stats
// surface and tests use this; cmd/memcached enables via the Cache).
func (w *Worker) EnableFingerprint() *fingerprint.Observer { return w.c.EnableFingerprint() }

// DisableFingerprint turns sampling off through a worker handle.
func (w *Worker) DisableFingerprint() { w.c.DisableFingerprint() }
