// Package mcstats holds memcached's statistics counters: the global counters
// protected by the stats lock (the second-most contended lock in the paper's
// mutrace profile) and the per-thread counters protected by per-thread locks
// — which, being pthread mutexes, are unsafe inside atomic transactions and
// therefore had to be transactionalized even though they are never contended
// (§3.1).
package mcstats

import (
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/stm"
	"repro/internal/txobs"
)

// Observability labels: the paper's mutrace profile ranks the stats lock
// second-most contended, so being able to see "stats_global" atop `stats
// conflicts` is exactly the diagnosis §6 wanted.
var (
	lblStatsGlobal = txobs.RegisterLabel("stats_global")
	lblStatsThread = txobs.RegisterLabel("stats_thread")
)

// ConnErrors counts connection teardowns by cause at the server front end.
// These counters live outside every lock/transaction domain (the connection
// layer is nontransactional even in memcached), so they are plain atomics
// rather than TWords.
type ConnErrors struct {
	IO       atomic.Uint64 // transport failures: resets, short writes, unexpected close
	Protocol atomic.Uint64 // malformed framing that forced a disconnect
	Timeout  atomic.Uint64 // read/write/idle deadline expiries

	// Reply-batching effectiveness at the protocol layer (not errors, but the
	// same nontransactional per-server home): Flushes counts actual writes of
	// buffered replies to the transport, BatchedReplies counts replies whose
	// flush was deferred because more pipelined input was already readable,
	// and WritevBatches counts multi-get responses handed to the transport as
	// one gathered writev-style write.
	Flushes        atomic.Uint64
	BatchedReplies atomic.Uint64
	WritevBatches  atomic.Uint64
}

// Global is the stats-lock domain (stats.c globals that never moved to
// per-thread storage).
type Global struct {
	TotalItems  *stm.TWord
	CurrItems   *stm.TWord
	CurrBytes   *stm.TWord
	Evictions   *stm.TWord
	Expired     *stm.TWord
	Reassigned  *stm.TWord // slab pages moved by the rebalancer
	HashExpands *stm.TWord
}

// NewGlobal allocates zeroed global counters.
func NewGlobal() *Global {
	return &Global{
		TotalItems:  stm.NewTWord(0).Label(lblStatsGlobal),
		CurrItems:   stm.NewTWord(0).Label(lblStatsGlobal),
		CurrBytes:   stm.NewTWord(0).Label(lblStatsGlobal),
		Evictions:   stm.NewTWord(0).Label(lblStatsGlobal),
		Expired:     stm.NewTWord(0).Label(lblStatsGlobal),
		Reassigned:  stm.NewTWord(0).Label(lblStatsGlobal),
		HashExpands: stm.NewTWord(0).Label(lblStatsGlobal),
	}
}

// Thread is one worker's statistics block (per-thread lock domain).
type Thread struct {
	GetCmds    *stm.TWord
	GetHits    *stm.TWord
	GetMisses  *stm.TWord
	SetCmds    *stm.TWord
	DeleteHits *stm.TWord
	DeleteMiss *stm.TWord
	IncrHits   *stm.TWord
	IncrMiss   *stm.TWord
	CasHits    *stm.TWord
	CasMiss    *stm.TWord
	CasBadval  *stm.TWord
	TouchCmds  *stm.TWord
	Expired    *stm.TWord
}

// NewThread allocates zeroed per-thread counters.
func NewThread() *Thread {
	return &Thread{
		GetCmds:    stm.NewTWord(0).Label(lblStatsThread),
		GetHits:    stm.NewTWord(0).Label(lblStatsThread),
		GetMisses:  stm.NewTWord(0).Label(lblStatsThread),
		SetCmds:    stm.NewTWord(0).Label(lblStatsThread),
		DeleteHits: stm.NewTWord(0).Label(lblStatsThread),
		DeleteMiss: stm.NewTWord(0).Label(lblStatsThread),
		IncrHits:   stm.NewTWord(0).Label(lblStatsThread),
		IncrMiss:   stm.NewTWord(0).Label(lblStatsThread),
		CasHits:    stm.NewTWord(0).Label(lblStatsThread),
		CasMiss:    stm.NewTWord(0).Label(lblStatsThread),
		CasBadval:  stm.NewTWord(0).Label(lblStatsThread),
		TouchCmds:  stm.NewTWord(0).Label(lblStatsThread),
		Expired:    stm.NewTWord(0).Label(lblStatsThread),
	}
}

// Aggregate sums the per-thread blocks into a plain snapshot, reading each
// block under ctx (memcached's threadlocal_stats_aggregate takes every
// per-thread lock; transactional branches read inside a transaction).
type Aggregated struct {
	GetCmds, GetHits, GetMisses uint64
	SetCmds                     uint64
	DeleteHits, DeleteMiss      uint64
	IncrHits, IncrMiss          uint64
	CasHits, CasMiss, CasBadval uint64
	TouchCmds, Expired          uint64
}

// Aggregate folds ts into a snapshot via c.
func Aggregate(c access.Ctx, blocks []*Thread) Aggregated {
	var a Aggregated
	for _, t := range blocks {
		a.GetCmds += c.Word(t.GetCmds)
		a.GetHits += c.Word(t.GetHits)
		a.GetMisses += c.Word(t.GetMisses)
		a.SetCmds += c.Word(t.SetCmds)
		a.DeleteHits += c.Word(t.DeleteHits)
		a.DeleteMiss += c.Word(t.DeleteMiss)
		a.IncrHits += c.Word(t.IncrHits)
		a.IncrMiss += c.Word(t.IncrMiss)
		a.CasHits += c.Word(t.CasHits)
		a.CasMiss += c.Word(t.CasMiss)
		a.CasBadval += c.Word(t.CasBadval)
		a.TouchCmds += c.Word(t.TouchCmds)
		a.Expired += c.Word(t.Expired)
	}
	return a
}

// Add returns the field-wise sum of a and o — merging per-shard aggregates
// into the engine-level "stats" view of a sharded cache.
func (a Aggregated) Add(o Aggregated) Aggregated {
	a.GetCmds += o.GetCmds
	a.GetHits += o.GetHits
	a.GetMisses += o.GetMisses
	a.SetCmds += o.SetCmds
	a.DeleteHits += o.DeleteHits
	a.DeleteMiss += o.DeleteMiss
	a.IncrHits += o.IncrHits
	a.IncrMiss += o.IncrMiss
	a.CasHits += o.CasHits
	a.CasMiss += o.CasMiss
	a.CasBadval += o.CasBadval
	a.TouchCmds += o.TouchCmds
	a.Expired += o.Expired
	return a
}

// Ops sums the command counters into one operations-processed figure — the
// time-series denominator the tracing layer plots abort and serialization
// rates against. Hits and misses of the same command family count once.
func (a Aggregated) Ops() uint64 {
	return a.GetCmds + a.SetCmds +
		a.DeleteHits + a.DeleteMiss +
		a.IncrHits + a.IncrMiss +
		a.CasHits + a.CasMiss + a.CasBadval +
		a.TouchCmds
}
