package stm

import (
	"errors"
	"runtime"
	"time"
)

// Runtime-swappable configuration.
//
// The controller experiments (internal/tmctl) need to retune a live TM domain
// — switch the algorithm of a pathological shard to TML or the serial lock,
// widen the contention-manager backoff window, shrink the retry budget —
// without stopping the server. The static Config stays what the Runtime was
// created with; the knobs that may change at runtime live in a DynConfig
// published through an atomic pointer and swapped under the shard's serial
// lock, so no transaction ever observes a mixed-algorithm state.

// DynConfig is the runtime-swappable slice of a Runtime's configuration.
// Reconfigure installs a new one atomically; every transaction attempt pins
// the pointer current at its begin for its whole lifetime.
type DynConfig struct {
	Algorithm Algorithm
	CM        ContentionManager

	// SerializeAfter is the consecutive-abort retry budget at which
	// CMSerialize escalates the attempt to serial-irrevocable execution.
	SerializeAfter int

	// Backoff shapes the CMBackoff delay curve (and the watchdog's imposed
	// backoff): exponential with deterministic seeded jitter.
	Backoff BackoffConfig
}

// BackoffConfig parameterizes the exponential-with-jitter abort backoff. The
// delay window for the n-th consecutive abort is BaseNs<<min(n, MaxShift)
// nanoseconds; the actual delay is drawn uniformly from the upper half of the
// window using the thread's seeded xorshift state, so a fixed Config.Seed
// yields a reproducible delay sequence.
type BackoffConfig struct {
	BaseNs   uint64 // window base for the first retry (default 64ns)
	MaxShift int    // exponent cap: window <= BaseNs<<MaxShift (default 12)
}

func (b BackoffConfig) withDefaults() BackoffConfig {
	if b.BaseNs == 0 {
		b.BaseNs = defaultBackoffBaseNs
	}
	if b.MaxShift <= 0 {
		b.MaxShift = defaultBackoffMaxShift
	}
	return b
}

const (
	defaultBackoffBaseNs   = 64
	defaultBackoffMaxShift = 12
)

func (d DynConfig) withDefaults() DynConfig {
	if d.SerializeAfter <= 0 {
		d.SerializeAfter = defaultSerializeAfter
	}
	d.Backoff = d.Backoff.withDefaults()
	return d
}

// ErrNoSerialLock reports a Reconfigure attempt on a runtime built with
// Config.NoSerialLock: without the global readers/writer lock there is no
// way to quiesce the domain, so its configuration is frozen at creation.
var ErrNoSerialLock = errors.New("stm: cannot reconfigure a NoSerialLock runtime")

// DynConfig returns the currently installed dynamic configuration.
func (rt *Runtime) DynConfig() DynConfig { return *rt.dyn.Load() }

// Algorithm returns the algorithm new transaction attempts will run under.
func (rt *Runtime) Algorithm() Algorithm { return rt.dyn.Load().Algorithm }

func (rt *Runtime) dynLoad() *DynConfig { return rt.dyn.Load() }

// Reconfigure atomically replaces the runtime's dynamic configuration: it
// quiesces the domain through the serial lock — acquire the write side
// (draining every read-lock-holding attempt and blocking new begins), wait
// for the subscribed attempts (read-only fast path, HTM elision) that the
// acquisition doomed to retire — then flips the config pointer and releases.
// No transaction observes mixed-algorithm state: attempts holding the read
// side pin their config for their whole lifetime, and attempts that race the
// swap re-check the pointer after acquiring and restart under the new config.
//
// mut is called with a copy of the current configuration and edits it in
// place. Must not be called from inside a transaction on the same runtime
// (the quiesce would wait for the caller itself). Returns ErrNoSerialLock on
// runtimes built without the serial lock (the Figure 10 configuration).
func (rt *Runtime) Reconfigure(mut func(*DynConfig)) error {
	if rt.cfg.NoSerialLock {
		return ErrNoSerialLock
	}
	rt.serial.Lock()
	rt.drainSpeculative()
	old := rt.dyn.Load()
	next := *old
	mut(&next)
	next = next.withDefaults()
	rt.dyn.Store(&next)
	rt.stats.Reconfigures.Add(1)
	if next.Algorithm != old.Algorithm {
		rt.stats.AlgoSwaps.Add(1)
	}
	rt.serial.Unlock()
	return nil
}

// drainSpeculative waits, with the serial write lock held, for every
// subscribed speculative attempt to retire. Read-lock-holding attempts were
// already drained by Lock() itself; subscribed attempts (read-only fast
// path, HTM elision) hold nothing, but the acquisition's sequence bump has
// doomed them — they abort at their next subscription check — so the wait is
// bounded. Their in-place effects (emulated-HTM eager writes) are undone by
// rollback before activeSince clears, so when this returns the heap holds no
// speculative state from the outgoing configuration.
func (rt *Runtime) drainSpeculative() {
	snapP := rt.thSnap.Load()
	if snapP == nil {
		return
	}
	for _, th := range *snapP {
		spins := 0
		for th.activeSince.Load() != 0 {
			spins++
			if spins > 32 {
				runtime.Gosched()
			}
		}
	}
}

// drainEagerSubscribed waits, with the serial write lock held, for in-flight
// emulated-hardware attempts that have performed eager writes to retire.
// They subscribe instead of taking the read side, so Lock() does not drain
// them — yet they write eagerly in place, and their rollback (undo-log
// restore) racing this serial writer's uninstrumented stores would clobber
// committed data. Real RTM aborts the hardware transaction the moment the
// lock's cache line is invalidated; the emulation gets the same guarantee by
// waiting here. Only attempts holding dirty in-place state are waited for:
// eagerSub is published at the first eager write (htmMarkEager), not at
// begin, so a hardware attempt that has merely read — and may be parked in
// its body — cannot stall the serial writer. The waited-for attempts are
// doomed (the acquisition broke their subscription) and already past their
// last subscription check, so the wait is bounded by their rollback.
func (rt *Runtime) drainEagerSubscribed() {
	snapP := rt.thSnap.Load()
	if snapP == nil {
		return
	}
	for _, th := range *snapP {
		spins := 0
		for th.eagerSub.Load() {
			spins++
			if spins > 32 {
				runtime.Gosched()
			}
		}
	}
}

// beginSpeculative pins the current dynamic configuration for the attempt and
// acquires its serial-lock side: read-only and HTM attempts publish
// activeSince and subscribe (loads only), everything else takes the read
// side. Returns false — with nothing held — if the domain has been
// reconfigured to SerialAlg, in which case the caller must run serially.
//
// The re-check of the config pointer after each acquisition closes the race
// with a concurrent Reconfigure: once the read side is held no swap can be
// in flight (the swapper needs the write side), so pointer equality proves
// the pinned config is current; on the subscription path, equality proves
// either the same, or that a swap is mid-drain waiting on our published
// activeSince — in which case the flip happens only after this doomed attempt
// retires, so running it under the outgoing config is still consistent.
func (th *Thread) beginSpeculative(tx *Tx, wantRO bool) bool {
	rt := th.rt
	for {
		d := rt.dyn.Load()
		algo := d.Algorithm
		if algo == SerialAlg {
			return false
		}
		ro := wantRO && (algo == MLWT || algo == LazyAlg)
		if ro || algo == HTM {
			// Publish activeSince before subscribing: a concurrent serial
			// writer or swap either makes the subscription fail (writer bit
			// visible) or observes the published state in its drain and waits
			// for this attempt to retire. Emulated-HTM attempts publish their
			// eagerSub mark lazily, at the first eager write (htmMarkEager) —
			// an attempt that has only read holds no in-place state, so a
			// serial writer need not wait for it.
			th.activeSince.Store(rt.txSeq.Add(1))
			seq, ok := rt.serial.trySubscribe()
			if !ok {
				th.activeSince.Store(0)
				rt.serial.waitNoWriter()
				continue
			}
			if rt.dyn.Load() != d {
				th.activeSince.Store(0)
				continue
			}
			tx.algo, tx.ro = algo, ro
			if ro {
				tx.roSeq = seq
			} else {
				tx.htmSeq = seq
			}
			return true
		}
		rt.serial.RLock()
		if rt.dyn.Load() != d {
			rt.serial.RUnlock()
			continue
		}
		th.activeSince.Store(rt.txSeq.Add(1))
		tx.algo = algo
		return true
	}
}

// backoffDelay computes the next exponential-with-jitter abort delay: the
// window doubles per consecutive abort up to bc.MaxShift, and the jitter is
// drawn from the caller's xorshift64* state — advancing it — so a fixed seed
// yields a reproducible sequence (the determinism the fault-injection replay
// harness depends on).
func backoffDelay(state *uint64, consec int, bc BackoffConfig) time.Duration {
	shift := consec
	if shift > bc.MaxShift {
		shift = bc.MaxShift
	}
	ns := bc.BaseNs << shift
	x := *state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*state = x
	r := x * 0x2545F4914F6CDD1D
	ns = ns/2 + r%(ns/2+1) // jitter in [ns/2, ns]
	return time.Duration(ns)
}

// mixSeed folds a runtime seed and a thread ordinal into a nonzero xorshift
// state (splitmix64 finalizer).
func mixSeed(seed, ordinal uint64) uint64 {
	z := seed + (ordinal+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31) | 1
}
