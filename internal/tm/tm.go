// Package tm is the single transaction entry point for this repository.
//
// Historically every layer grew its own run helper: core.Ctx.Atomic,
// core.Ctx.Relaxed, core.Ctx.RelaxedStartSerial, and raw stm.Thread.Run calls
// with hand-built Props scattered through engine, tmds and the tests. This
// package replaces them with two functions and a functional-options struct:
//
//	err := tm.Atomic(th, tm.With(tm.Label("item_get"), tm.ReadOnly()), func(tx *stm.Tx) { ... })
//	err := tm.Relaxed(th, tm.Options{}, func(tx *stm.Tx) { ... })
//
// Options are plain data, so hot call sites may build them once (or use the
// zero value) and skip the closure allocations of the variadic form. The old
// core.Ctx wrappers have been deleted; this package is the one blessed
// transaction API.
package tm

import (
	"repro/internal/stm"
)

// Options is the resolved option set for one transaction run. The zero value
// is a plain speculative transaction with no label.
type Options struct {
	// ReadOnly declares the body is not expected to write; orec-based
	// algorithms then attempt the read-only fast-path commit (zero orec
	// acquisitions, zero serial-lock traffic) and upgrade cleanly on the
	// first write barrier. A hint, never a contract.
	ReadOnly bool
	// StartSerial makes a relaxed transaction begin serial-irrevocable
	// instead of paying for instrumented execution up to the switch point.
	// Meaningless (and rejected by the runtime) for atomic transactions.
	StartSerial bool
	// TrySerial, with StartSerial, bounds the serial write-lock acquisition:
	// if the lock stays busy past a short spin the run returns
	// stm.ErrSerialBusy with no effects. The cross-shard commit path sets it
	// on every domain after the first so overlapping committers cannot
	// deadlock — the loser unwinds and retries in ascending shard order.
	TrySerial bool
	// Site labels the source-level transaction for conflict attribution and
	// serialization-cause profiling.
	Site string
	// MaxRetries bounds consecutive speculative aborts; past it the run
	// returns stm.ErrRetryLimit instead of escalating further. 0 = retry
	// forever (the libitm behaviour).
	MaxRetries int
}

// Option mutates an Options under construction.
type Option func(*Options)

// With builds an Options from opts.
func With(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// ReadOnly declares the transaction read-only (see Options.ReadOnly).
func ReadOnly() Option { return func(o *Options) { o.ReadOnly = true } }

// StartSerial makes a relaxed transaction begin serial (see
// Options.StartSerial).
func StartSerial() Option { return func(o *Options) { o.StartSerial = true } }

// TrySerial bounds the serial-lock acquisition of a StartSerial transaction
// (see Options.TrySerial).
func TrySerial() Option { return func(o *Options) { o.TrySerial = true } }

// Label names the transaction site (see Options.Site).
func Label(site string) Option { return func(o *Options) { o.Site = site } }

// MaxRetries bounds consecutive aborts (see Options.MaxRetries).
func MaxRetries(n int) Option { return func(o *Options) { o.MaxRetries = n } }

func (o Options) props(kind stm.Kind) stm.Props {
	return stm.Props{
		Kind:        kind,
		StartSerial: o.StartSerial,
		TrySerial:   o.TrySerial,
		Site:        o.Site,
		ReadOnly:    o.ReadOnly,
		MaxRetries:  o.MaxRetries,
	}
}

// Atomic runs fn as an atomic transaction on th: unsafe operations are
// forbidden (they panic with stm.ErrUnsafeInAtomic) and the transaction never
// serializes except for contention-management progress. Returns nil on
// commit, stm.ErrCanceled if fn canceled, stm.ErrRetryLimit if
// Options.MaxRetries was exhausted. Nested calls flatten into the enclosing
// transaction, as in GCC.
func Atomic(th *stm.Thread, o Options, fn func(*stm.Tx)) error {
	return th.Run(o.props(stm.Atomic), fn)
}

// Relaxed runs fn as a relaxed transaction on th: unsafe operations trigger
// the in-flight switch to serial-irrevocable execution. Return values are as
// for Atomic.
func Relaxed(th *stm.Thread, o Options, fn func(*stm.Tx)) error {
	return th.Run(o.props(stm.Relaxed), fn)
}

// LoadWord reads w in a mini atomic transaction (flattening into the current
// one if th is already inside a transaction).
func LoadWord(th *stm.Thread, w *stm.TWord) uint64 {
	var v uint64
	_ = Atomic(th, Options{ReadOnly: true}, func(tx *stm.Tx) { v = w.Load(tx) })
	return v
}

// StoreWord writes w in a mini atomic transaction.
func StoreWord(th *stm.Thread, w *stm.TWord, v uint64) {
	_ = Atomic(th, Options{}, func(tx *stm.Tx) { w.Store(tx, v) })
}

// AddWord adds delta to w in a mini atomic transaction and returns the new
// value.
func AddWord(th *stm.Thread, w *stm.TWord, delta uint64) uint64 {
	var v uint64
	_ = Atomic(th, Options{}, func(tx *stm.Tx) { v = w.Add(tx, delta) })
	return v
}

// SetTrace installs (nil: removes) a request-scoped trace sink on th: while
// set, every transaction run through th delivers its begin/abort/serialize/
// commit events to sink regardless of the aggregate observer's toggle. This
// is the single entry point the engine uses to thread request spans down into
// the runtime; it exists here (not on the caller's side of stm) so the
// tracing contract is part of the same API surface as Atomic/Relaxed.
func SetTrace(th *stm.Thread, sink stm.TraceSink) { th.SetTraceHook(sink) }
