package tmds

import (
	"repro/internal/stm"
	"repro/internal/txobs"
)

// lblSkip tags skip-list words for the conflict heat map.
var lblSkip = txobs.RegisterLabel("tmds_skiplist")

// SkipList is a transactional skip list set: sorted, with expected
// logarithmic search via express lanes. Like the treap, node heights derive
// deterministically from the key, so the structure's shape is a pure
// function of its contents.
//
// Skip lists are the other classic STM workload: searches read a short
// prefix of high-level links plus a short walk at level 0, so the read set
// is small; inserts write one forward pointer per level of the new node.
type SkipList struct {
	maxLevel int
	head     []*stm.TAny // head forward pointers, one per level
	size     *stm.TWord
}

type skipNode struct {
	key  uint64
	next []*stm.TAny // forward pointers, len == node height
}

func asSkipNode(v any) *skipNode {
	if v == nil {
		return nil
	}
	return v.(*skipNode)
}

// NewSkipList creates an empty skip list with the given maximum level
// (default 16 when maxLevel <= 0, comfortable for ~64K keys).
func NewSkipList(maxLevel int) *SkipList {
	if maxLevel <= 0 {
		maxLevel = 16
	}
	s := &SkipList{maxLevel: maxLevel, size: stm.NewTWord(0).Label(lblSkip)}
	s.head = make([]*stm.TAny, maxLevel)
	for i := range s.head {
		s.head[i] = stm.NewTAny(nil).Label(lblSkip)
	}
	return s
}

// heightFor derives a geometric (p = 1/2) height from the key.
func (s *SkipList) heightFor(key uint64) int {
	x := prioFor(key) // reuse the treap's mixer
	h := 1
	for x&1 == 1 && h < s.maxLevel {
		h++
		x >>= 1
	}
	return h
}

// findPreds returns, per level, the link whose successor is the first node
// with key >= target, plus that first node at level 0 (nil if none).
//
// The walk descends level by level, resuming each level from the predecessor
// node found above (a node reached while walking level l has height > l, so
// it owns a link at every lower level).
func (s *SkipList) findPreds(tx *stm.Tx, key uint64) ([]*stm.TAny, *skipNode) {
	preds := make([]*stm.TAny, s.maxLevel)
	var predNode *skipNode // nil means the head towers
	for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
		var link *stm.TAny
		if predNode == nil {
			link = s.head[lvl]
		} else {
			link = predNode.next[lvl]
		}
		for {
			n := asSkipNode(link.Load(tx))
			if n == nil || n.key >= key {
				break
			}
			predNode = n
			link = n.next[lvl]
		}
		preds[lvl] = link
	}
	return preds, asSkipNode(preds[0].Load(tx))
}

// Contains reports whether key is present.
func (s *SkipList) Contains(tx *stm.Tx, key uint64) bool {
	_, n := s.findPreds(tx, key)
	return n != nil && n.key == key
}

// Insert adds key; reports false if it was already present.
func (s *SkipList) Insert(tx *stm.Tx, key uint64) bool {
	preds, n := s.findPreds(tx, key)
	if n != nil && n.key == key {
		return false
	}
	h := s.heightFor(key)
	node := &skipNode{key: key, next: make([]*stm.TAny, h)}
	for lvl := 0; lvl < h; lvl++ {
		node.next[lvl] = stm.NewTAny(preds[lvl].Load(tx)).Label(lblSkip)
		preds[lvl].Store(tx, node)
	}
	s.size.Add(tx, 1)
	return true
}

// Remove deletes key; reports whether it was present.
func (s *SkipList) Remove(tx *stm.Tx, key uint64) bool {
	preds, n := s.findPreds(tx, key)
	if n == nil || n.key != key {
		return false
	}
	for lvl := 0; lvl < len(n.next); lvl++ {
		// preds[lvl] points at n for every level n occupies (findPreds
		// stopped at the first key >= target on each level).
		if asSkipNode(preds[lvl].Load(tx)) == n {
			preds[lvl].Store(tx, n.next[lvl].Load(tx))
		}
	}
	s.size.Add(tx, ^uint64(0))
	return true
}

// Len returns the element count.
func (s *SkipList) Len(tx *stm.Tx) uint64 { return s.size.Load(tx) }

// Keys returns the keys in ascending order (the level-0 walk).
func (s *SkipList) Keys(tx *stm.Tx) []uint64 {
	var out []uint64
	for n := asSkipNode(s.head[0].Load(tx)); n != nil; n = asSkipNode(n.next[0].Load(tx)) {
		out = append(out, n.key)
	}
	return out
}

// CheckInvariants validates that every level is sorted and is a subsequence
// of the level below, and that the level-0 count matches Len.
func (s *SkipList) CheckInvariants(tx *stm.Tx) bool {
	// Level 0: strict ascending order, count == size.
	count := uint64(0)
	prev := uint64(0)
	first := true
	level0 := map[uint64]bool{}
	for n := asSkipNode(s.head[0].Load(tx)); n != nil; n = asSkipNode(n.next[0].Load(tx)) {
		if !first && n.key <= prev {
			return false
		}
		prev, first = n.key, false
		level0[n.key] = true
		count++
	}
	if count != s.size.Load(tx) {
		return false
	}
	// Higher levels: sorted subsequences of level 0.
	for lvl := 1; lvl < s.maxLevel; lvl++ {
		first = true
		prev = 0
		for n := asSkipNode(s.head[lvl].Load(tx)); n != nil; n = asSkipNode(n.next[lvl].Load(tx)) {
			if len(n.next) <= lvl {
				return false // node present on a level above its height
			}
			if !first && n.key <= prev {
				return false
			}
			prev, first = n.key, false
			if !level0[n.key] {
				return false
			}
		}
	}
	return true
}
