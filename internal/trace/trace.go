// Package trace records cache operations and replays them against any
// synchronization branch: the same captured workload, bit-for-bit, driven
// through every member of the branch matrix. This is how a production cache
// team would compare the paper's branches on real traffic rather than on a
// synthetic generator.
//
// Traces serialize with encoding/gob; a few million operations fit in a few
// MB and replay deterministically (per-client streams preserve their order;
// cross-client interleaving is up to the scheduler, as it was live).
package trace

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"repro/internal/engine"
)

// Kind is an operation type.
type Kind byte

// Operation kinds.
const (
	OpGet Kind = iota
	OpSet
	OpAdd
	OpReplace
	OpAppend
	OpPrepend
	OpDelete
	OpIncr
	OpDecr
	OpTouch
	OpFlushAll
)

func (k Kind) String() string {
	names := [...]string{"get", "set", "add", "replace", "append", "prepend",
		"delete", "incr", "decr", "touch", "flush_all"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", byte(k))
}

// Op is one recorded operation. Client identifies the recording stream so
// replay can preserve per-client ordering.
type Op struct {
	Client  int
	Kind    Kind
	Key     []byte
	Value   []byte
	Flags   uint32
	Exptime uint64
	Delta   uint64
}

// Trace is a recorded operation sequence (in global arrival order).
type Trace struct {
	Ops []Op
}

// Save writes the trace to w.
func (t *Trace) Save(w io.Writer) error { return gob.NewEncoder(w).Encode(t) }

// Load reads a trace from r.
func Load(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, err
	}
	return &t, nil
}

// Clients returns the number of distinct client streams.
func (t *Trace) Clients() int {
	max := -1
	for _, op := range t.Ops {
		if op.Client > max {
			max = op.Client
		}
	}
	return max + 1
}

// ---------------------------------------------------------------------------
// Recording

// Recorder wraps an engine.Worker: every operation is forwarded and recorded.
// One Recorder per client stream; all Recorders of one Session share the
// trace.
type Recorder struct {
	s      *Session
	client int
	w      *engine.Worker
}

// Session accumulates a trace from several concurrent Recorders.
type Session struct {
	mu    sync.Mutex
	trace Trace
	next  int
}

// NewSession creates an empty recording session.
func NewSession() *Session { return &Session{} }

// NewRecorder binds a new client stream to worker w.
func (s *Session) NewRecorder(w *engine.Worker) *Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &Recorder{s: s, client: s.next, w: w}
	s.next++
	return r
}

// Trace returns the recorded trace (call after recording completes).
func (s *Session) Trace() *Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := Trace{Ops: append([]Op(nil), s.trace.Ops...)}
	return &cp
}

func (s *Session) record(op Op) {
	s.mu.Lock()
	s.trace.Ops = append(s.trace.Ops, op)
	s.mu.Unlock()
}

func dup(b []byte) []byte { return append([]byte(nil), b...) }

// Get forwards and records a get.
func (r *Recorder) Get(key []byte) ([]byte, uint32, uint64, bool) {
	r.s.record(Op{Client: r.client, Kind: OpGet, Key: dup(key)})
	return r.w.Get(key)
}

// Set forwards and records a set.
func (r *Recorder) Set(key []byte, flags uint32, exptime uint64, value []byte) engine.StoreResult {
	r.s.record(Op{Client: r.client, Kind: OpSet, Key: dup(key), Value: dup(value), Flags: flags, Exptime: exptime})
	return r.w.Set(key, flags, exptime, value)
}

// Delete forwards and records a delete.
func (r *Recorder) Delete(key []byte) bool {
	r.s.record(Op{Client: r.client, Kind: OpDelete, Key: dup(key)})
	return r.w.Delete(key)
}

// Incr forwards and records an incr.
func (r *Recorder) Incr(key []byte, delta uint64) (uint64, engine.DeltaResult) {
	r.s.record(Op{Client: r.client, Kind: OpIncr, Key: dup(key), Delta: delta})
	return r.w.Incr(key, delta)
}

// ---------------------------------------------------------------------------
// Replay

// Result summarizes a replay.
type Result struct {
	Ops    uint64
	Hits   uint64
	Errors uint64
}

// Replay drives the trace against cache: each recorded client stream becomes
// one worker goroutine issuing its operations in recorded order.
func Replay(c *engine.Cache, t *Trace) Result {
	n := t.Clients()
	if n == 0 {
		return Result{}
	}
	streams := make([][]Op, n)
	for _, op := range t.Ops {
		streams[op.Client] = append(streams[op.Client], op)
	}
	var res Result
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, stream := range streams {
		stream := stream
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.NewWorker()
			var ops, hits, errs uint64
			for _, op := range stream {
				ops++
				switch op.Kind {
				case OpGet:
					if _, _, _, ok := w.Get(op.Key); ok {
						hits++
					}
				case OpSet:
					if w.Set(op.Key, op.Flags, op.Exptime, op.Value) != engine.Stored {
						errs++
					}
				case OpAdd:
					w.Add(op.Key, op.Flags, op.Exptime, op.Value)
				case OpReplace:
					w.Replace(op.Key, op.Flags, op.Exptime, op.Value)
				case OpAppend:
					w.Append(op.Key, op.Value)
				case OpPrepend:
					w.Prepend(op.Key, op.Value)
				case OpDelete:
					w.Delete(op.Key)
				case OpIncr:
					w.Incr(op.Key, op.Delta)
				case OpDecr:
					w.Decr(op.Key, op.Delta)
				case OpTouch:
					w.Touch(op.Key, op.Exptime)
				case OpFlushAll:
					w.FlushAll()
				default:
					errs++
				}
			}
			mu.Lock()
			res.Ops += ops
			res.Hits += hits
			res.Errors += errs
			mu.Unlock()
		}()
	}
	wg.Wait()
	return res
}
