// Package server provides the TCP front end: it accepts connections, binds
// each to an engine worker, and speaks the memcached protocols via
// internal/protocol. Go's goroutine-per-connection model stands in for
// memcached's libevent worker threads; the synchronization structure under
// study (worker threads sharing the cache with maintenance threads) is
// identical.
//
// The front end is hardened against the failure modes the torture harness
// injects: per-connection read/write deadlines, idle-connection reaping, a
// max-connections limit enforced as accept backpressure (the listener simply
// stops accepting, as memcached's -c limit does), graceful drain on Close
// (in-flight commands finish, then connections close), and per-cause
// connection-error accounting surfaced through the `stats` command.
package server

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/mcstats"
	"repro/internal/protocol"
	"repro/internal/txtrace"
)

// Config parameterizes a Server. The zero value disables every limit.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// MaxConns bounds concurrent connections; at the limit the accept loop
	// blocks (backpressure) instead of accepting and failing. 0 = unlimited.
	MaxConns int
	// IdleTimeout reaps connections that sit idle between commands.
	IdleTimeout time.Duration
	// ReadTimeout bounds reading the remainder of a command once its first
	// byte has arrived (defeats slow-client trickling of a command body).
	ReadTimeout time.Duration
	// WriteTimeout bounds each write of a reply.
	WriteTimeout time.Duration
	// DrainTimeout is the grace Close gives in-flight commands before their
	// connections are cut (default 5s).
	DrainTimeout time.Duration
	// Fault, when non-nil, injects connection-level faults (drops, short
	// reads/writes, slow trickling) into every connection's transport.
	Fault *fault.Injector
	// EventLoop selects the event-driven transport: idle sockets are parked
	// in internal/poller (epoll on linux) holding zero buffer bytes and no
	// goroutine, and ready connections are served in bursts by a bounded
	// worker pool fed by shard-affine queues. False = the classic
	// goroutine-per-connection transport.
	EventLoop bool
	// Workers bounds the event-loop execution tier (0 = NumShards+2,
	// capped at 32). Ignored by the classic transport.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.EventLoop && c.ReadTimeout == 0 {
		// A worker is lent to a connection for the duration of a command; an
		// unbounded mid-command read would let one trickling client starve
		// the pool, so the event-loop transport always bounds it.
		c.ReadTimeout = 30 * time.Second
	}
	return c
}

// Server is a running memcached front end.
type Server struct {
	cache *engine.Cache
	cfg   Config
	ln    net.Listener
	errs  mcstats.ConnErrors

	sem    chan struct{} // MaxConns slots; nil = unlimited
	stopCh chan struct{}

	mu     sync.Mutex
	conns  map[*servConn]struct{}
	closed bool

	draining atomic.Bool

	connSeq atomic.Uint64 // connection ids for request-span attribution

	// ev is the event-loop transport state; nil when cfg.EventLoop is off
	// (classic goroutine-per-connection serving).
	ev *evLoop

	wg sync.WaitGroup
}

// Listen starts serving cache on addr with default (unlimited) settings. The
// cache's maintenance threads must already be started.
func Listen(cache *engine.Cache, addr string) (*Server, error) {
	return ListenConfig(cache, Config{Addr: addr})
}

// ListenConfig starts serving cache with the given front-end configuration.
func ListenConfig(cache *engine.Cache, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cache:  cache,
		cfg:    cfg,
		ln:     ln,
		conns:  make(map[*servConn]struct{}),
		stopCh: make(chan struct{}),
	}
	if cfg.MaxConns > 0 {
		s.sem = make(chan struct{}, cfg.MaxConns)
	}
	if cfg.EventLoop {
		ev, err := newEvLoop(s)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.ev = ev
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// EventLoop reports whether the event-driven transport is active.
func (s *Server) EventLoop() bool { return s.ev != nil }

// TransportStats exposes the transport's telemetry source (nil for the
// classic transport, which has no queues to report). The debug endpoint
// uses this; per-connection wiring happens in adopt.
func (s *Server) TransportStats() protocol.TransportStats {
	if s.ev == nil {
		return nil
	}
	return s.ev
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ConnErrors exposes the per-cause connection-error counters.
func (s *Server) ConnErrors() *mcstats.ConnErrors { return &s.errs }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		if s.sem != nil {
			// Take the connection slot before accepting: at MaxConns the
			// kernel queues further dials and clients feel backpressure
			// rather than an accept-then-reject.
			select {
			case s.sem <- struct{}{}:
			case <-s.stopCh:
				return
			}
		}
		conn, err := s.ln.Accept()
		if err != nil {
			if s.sem != nil {
				<-s.sem
			}
			return // listener closed
		}
		sc := &servConn{Conn: conn, srv: s, ev: s.ev != nil}
		s.mu.Lock()
		if s.closed {
			// Accepted concurrently with Close after its sweep: tear down
			// here, never registered.
			s.mu.Unlock()
			conn.Close()
			if s.sem != nil {
				<-s.sem
			}
			return
		}
		// Registration and wg.Add must share one critical section with the
		// closed check: registering first and Adding after the unlock would
		// let Close sweep the map and pass wg.Wait before this handler is
		// counted, leaking the connection past shutdown.
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		if s.ev != nil {
			s.ev.adopt(sc)
		} else {
			go s.handle(sc)
		}
	}
}

func (s *Server) handle(sc *servConn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
		sc.Conn.Close()
		if s.sem != nil {
			<-s.sem
		}
	}()
	worker := s.cache.NewWorker()
	pc := protocol.NewConn(worker, sc)
	pc.SetControl(sc)
	pc.SetConnErrors(&s.errs)
	// Every connection gets a span buffer up front; with tracing off its only
	// cost is one atomic load per request inside Begin.
	pc.SetSpans(txtrace.NewConnSpans(s.cache.Tracer(), s.connSeq.Add(1)))
	s.countErr(pc.Serve())
}

// countErr classifies why a connection's Serve returned, instead of
// swallowing it: deadline expiries, protocol-fatal framing, transport I/O.
func (s *Server) countErr(err error) {
	if err == nil || errors.Is(err, errDraining) {
		return
	}
	if s.draining.Load() {
		// Teardown deadlines during drain are the server's own doing.
		return
	}
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		s.errs.Timeout.Add(1)
	case errors.Is(err, protocol.ErrProtocol):
		s.errs.Protocol.Add(1)
	default:
		s.errs.IO.Add(1)
	}
}

// Close stops accepting and drains: idle connections close immediately,
// connections inside a command get DrainTimeout to finish it (and are then
// refused further commands). Idempotent — a second Close returns nil without
// waiting again.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining.Store(true)
	close(s.stopCh)
	err := s.ln.Close()
	now := time.Now()
	for sc := range s.conns {
		if sc.busy.Load() {
			sc.Conn.SetDeadline(now.Add(s.cfg.DrainTimeout))
		} else if s.ev == nil {
			// Wake the blocked read-next-command immediately. Event-loop
			// connections have no blocked read to wake; the transport sweeps
			// its parked connections in shutdown below.
			sc.Conn.SetDeadline(now)
		}
	}
	s.mu.Unlock()
	if s.ev != nil {
		s.ev.shutdown()
	}
	s.wg.Wait()
	return err
}

// errDraining stops a connection's serve loop between commands at shutdown.
var errDraining = errors.New("server: draining")

// servConn wraps a client connection with deadline management, busy-state
// tracking for graceful drain, and transport-level fault injection. It is the
// protocol.Control for its own protocol.Conn.
type servConn struct {
	net.Conn
	srv  *Server
	ev   bool        // served by the event-loop transport
	busy atomic.Bool // inside a command (between CommandStarted and CommandDone)
}

// BeforeCommand refuses new commands while draining, and otherwise arms the
// idle deadline the next-command read blocks under. Event-loop connections
// never block waiting for the next command (the poller owns idle time and a
// reaper enforces IdleTimeout), so they arm the ReadTimeout instead — it
// bounds the burst's reads even if the readiness event was a bare RDHUP.
func (sc *servConn) BeforeCommand() error {
	if sc.srv.draining.Load() {
		return errDraining
	}
	if sc.ev {
		if t := sc.srv.cfg.ReadTimeout; t > 0 {
			sc.Conn.SetReadDeadline(time.Now().Add(t))
		}
		return nil
	}
	if t := sc.srv.cfg.IdleTimeout; t > 0 {
		sc.Conn.SetReadDeadline(time.Now().Add(t))
	}
	return nil
}

// CommandStarted marks the connection busy and rearms the read deadline for
// the command body.
func (sc *servConn) CommandStarted() {
	sc.busy.Store(true)
	if sc.srv.draining.Load() {
		return // keep the drain deadline Close imposed
	}
	if t := sc.srv.cfg.ReadTimeout; t > 0 {
		sc.Conn.SetReadDeadline(time.Now().Add(t))
	} else if sc.srv.cfg.IdleTimeout > 0 {
		sc.Conn.SetReadDeadline(time.Time{})
	}
}

// CommandDone marks the connection idle again.
func (sc *servConn) CommandDone() {
	sc.busy.Store(false)
}

func (sc *servConn) Read(p []byte) (int, error) {
	if in := sc.srv.cfg.Fault; in != nil {
		if in.Fire(fault.ConnDrop) {
			sc.Conn.Close()
			return 0, net.ErrClosed
		}
		if in.Fire(fault.ConnSlow) {
			time.Sleep(time.Millisecond)
		}
		if len(p) > 1 && in.Fire(fault.ConnShortRead) {
			p = p[:1]
		}
	}
	return sc.Conn.Read(p)
}

func (sc *servConn) Write(p []byte) (int, error) {
	if in := sc.srv.cfg.Fault; in != nil {
		if in.Fire(fault.ConnDrop) {
			sc.Conn.Close()
			return 0, net.ErrClosed
		}
		if in.Fire(fault.ConnSlow) {
			time.Sleep(time.Millisecond)
		}
		if len(p) > 1 && in.Fire(fault.ConnShortWrite) {
			n, err := sc.Conn.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, io.ErrShortWrite
		}
	}
	if t := sc.srv.cfg.WriteTimeout; t > 0 {
		sc.Conn.SetWriteDeadline(time.Now().Add(t))
	}
	return sc.Conn.Write(p)
}

// WriteBuffers writes a gathered response in one writev-style call
// (net.Buffers uses writev on platforms that have it), arming the write
// deadline and consulting fault injection once for the whole batch rather
// than once per slice. The protocol layer discovers this method by interface
// assertion and uses it for large multi-get responses.
func (sc *servConn) WriteBuffers(bufs net.Buffers) (int64, error) {
	if in := sc.srv.cfg.Fault; in != nil {
		if in.Fire(fault.ConnDrop) {
			sc.Conn.Close()
			return 0, net.ErrClosed
		}
		if in.Fire(fault.ConnSlow) {
			time.Sleep(time.Millisecond)
		}
		if len(bufs) > 1 && in.Fire(fault.ConnShortWrite) {
			// Deliver only the first slice of the batch, then fail the write:
			// the torture harness's short-write fault, batch flavored.
			n, err := sc.Conn.Write(bufs[0])
			if err != nil {
				return int64(n), err
			}
			return int64(n), io.ErrShortWrite
		}
	}
	if t := sc.srv.cfg.WriteTimeout; t > 0 {
		sc.Conn.SetWriteDeadline(time.Now().Add(t))
	}
	return bufs.WriteTo(sc.Conn)
}
