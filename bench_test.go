// Repository-level benchmarks: one testing.B benchmark per figure and table
// of the paper (run `go test -bench=Fig -benchmem` or cmd/mcbench for the
// full sweeps), plus ablation benchmarks for the design choices DESIGN.md
// calls out.
//
// Figure/table benchmarks execute one scaled-down memslap round per
// iteration and report ops/s plus the serialization counters; the paper's
// full parameters are cmd/mcbench -ops 625000 -threads 1,2,4,8,12 -trials 5.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/memslap"
	"repro/internal/stm"
	"repro/internal/tmds"
	"repro/internal/tmlib"
)

// benchOpts keeps a single bench iteration around a few milliseconds.
var benchOpts = bench.Options{
	Threads:      []int{4},
	TableThreads: 4,
	OpsPerThread: 2000,
	KeySpace:     2048,
	ValueSize:    512,
}

func benchFigure(b *testing.B, id int) {
	for _, v := range bench.FigureVariants(id) {
		v := v
		b.Run(v.Label, func(b *testing.B) {
			var last bench.Measurement
			for i := 0; i < b.N; i++ {
				last = bench.Run(v, benchOpts.Threads[0], benchOpts)
			}
			b.ReportMetric(last.OpsPerS, "ops/s")
			if last.Stats.Commits > 0 {
				b.ReportMetric(float64(last.Stats.InFlightSwitch+last.Stats.StartSerial+last.Stats.AbortSerial), "serialized")
			}
		})
	}
}

func benchTable(b *testing.B, id int) {
	for _, v := range bench.TableVariants(id) {
		v := v
		b.Run(v.Label, func(b *testing.B) {
			var last bench.Measurement
			for i := 0; i < b.N; i++ {
				last = bench.Run(v, benchOpts.TableThreads, benchOpts)
			}
			b.ReportMetric(float64(last.Stats.Commits), "transactions")
			b.ReportMetric(float64(last.Stats.InFlightSwitch), "in-flight")
			b.ReportMetric(float64(last.Stats.StartSerial), "start-serial")
			b.ReportMetric(float64(last.Stats.AbortSerial), "abort-serial")
		})
	}
}

// One benchmark per figure in the paper's evaluation.

func BenchmarkFig4BaselineTransactionalization(b *testing.B) { benchFigure(b, 4) }
func BenchmarkFig6MaximalTransactionalization(b *testing.B)  { benchFigure(b, 6) }
func BenchmarkFig8SafeLibraries(b *testing.B)                { benchFigure(b, 8) }
func BenchmarkFig9OnCommitHandlers(b *testing.B)             { benchFigure(b, 9) }
func BenchmarkFig10NoSerialLock(b *testing.B)                { benchFigure(b, 10) }
func BenchmarkFig11AlgorithmsAndCMs(b *testing.B)            { benchFigure(b, 11) }

// One benchmark per table (serialization frequency and cause, 4 threads).

func BenchmarkTable1Serialization(b *testing.B) { benchTable(b, 1) }
func BenchmarkTable2Serialization(b *testing.B) { benchTable(b, 2) }
func BenchmarkTable3Serialization(b *testing.B) { benchTable(b, 3) }
func BenchmarkTable4Serialization(b *testing.B) { benchTable(b, 4) }

// ---------------------------------------------------------------------------
// Ablation 1: eager (write-through/undo) vs lazy (write-back/redo) vs NOrec
// under the write-heavy byte-copy pattern the paper blames for the buffered
// algorithms' memcpy logging costs (§4).

func BenchmarkAblationAlgoMemcpy(b *testing.B) {
	for _, alg := range []stm.Algorithm{stm.MLWT, stm.LazyAlg, stm.NOrec} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			rt := stm.New(stm.Config{Algorithm: alg, CM: stm.CMNone})
			th := rt.NewThread()
			src := make([]byte, 1024)
			for i := range src {
				src[i] = byte(i)
			}
			dst := stm.NewTBytes(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					tmlib.MemcpyFromLocal(tx, dst, 0, src)
				})
			}
		})
	}
}

// Ablation 2: the global readers/writer serial lock present vs removed, on a
// transaction-only microworkload (the Figure 10 mechanism isolated).

func BenchmarkAblationSerialLock(b *testing.B) {
	for _, noLock := range []bool{false, true} {
		noLock := noLock
		name := "with-serial-lock"
		if noLock {
			name = "no-serial-lock"
		}
		b.Run(name, func(b *testing.B) {
			rt := stm.New(stm.Config{Algorithm: stm.MLWT, CM: stm.CMNone, NoSerialLock: noLock})
			counters := make([]*stm.TWord, 64)
			for i := range counters {
				counters[i] = stm.NewTWord(0)
			}
			b.RunParallel(func(pb *testing.PB) {
				th := rt.NewThread()
				i := 0
				for pb.Next() {
					w := counters[i%len(counters)]
					i++
					_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
						w.Store(tx, w.Load(tx)+1)
					})
				}
			})
		})
	}
}

// Ablation 3: contention managers on a hot-counter workload with forced
// transaction overlap (a mid-transaction yield stands in for preemption,
// which is how overlap arises on a single-core host).

func BenchmarkAblationCM(b *testing.B) {
	for _, cm := range []stm.ContentionManager{stm.CMNone, stm.CMSerialize, stm.CMBackoff, stm.CMHourglass} {
		cm := cm
		b.Run(cm.String(), func(b *testing.B) {
			cfg := stm.Config{Algorithm: stm.MLWT, CM: cm, SerializeAfter: 100, HourglassAfter: 16}
			rt := stm.New(cfg)
			hot := stm.NewTWord(0)
			b.RunParallel(func(pb *testing.PB) {
				th := rt.NewThread()
				for pb.Next() {
					_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
						v := hot.Load(tx)
						hot.Store(tx, v+1)
					})
				}
			})
			s := rt.Stats()
			b.ReportMetric(s.AbortsPerCommit(), "aborts/commit")
		})
	}
}

// Ablation 4: the two item-lock strategies (Figure 1) on a get-heavy
// workload — IP pays two mini-transactions per access, IT one larger
// instrumented transaction.

func BenchmarkAblationItemLock(b *testing.B) {
	for _, br := range []engine.Branch{engine.IPOnCommit, engine.ITOnCommit} {
		br := br
		b.Run(br.String(), func(b *testing.B) {
			c := engine.New(engine.Config{Branch: br, MemLimit: 16 << 20, HashPower: 10})
			c.Start()
			defer c.Stop()
			w := c.NewWorker()
			for i := 0; i < 512; i++ {
				w.Set([]byte(fmt.Sprintf("k-%03d", i)), 0, 0, make([]byte, 256))
			}
			keys := make([][]byte, 512)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("k-%03d", i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, ok := w.Get(keys[i%512]); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

// Ablation 5: making a libc call safe by reimplementation (instrumented
// word-wise parse) vs by marshaling (copy to private memory, pure call) —
// the two §3.4 techniques head to head.

func BenchmarkAblationMarshalVsReimpl(b *testing.B) {
	rt := stm.New(stm.Config{})
	th := rt.NewThread()
	buf := stm.NewTBytesFrom([]byte("18446744073709551615"))

	b.Run("marshal+pure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
				tmlib.PureStrtoull(tmlib.MarshalIn(tx, buf, 0, buf.Len()))
			})
		}
	})
	b.Run("reimplemented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
				// Fully instrumented digit-by-digit parse.
				var v uint64
				for j := 0; j < buf.Len(); j++ {
					c := buf.ByteAt(tx, j)
					if c < '0' || c > '9' {
						break
					}
					v = v*10 + uint64(c-'0')
				}
				_ = v
			})
		}
	})
}

// Ablation 6: the cost of privatization-safety quiescence (writers waiting
// for concurrent transactions at commit) — the tax the Draft specification's
// safety requirement imposes on every writer commit.

func BenchmarkAblationQuiescence(b *testing.B) {
	for _, noQ := range []bool{false, true} {
		noQ := noQ
		name := "quiesce"
		if noQ {
			name = "no-quiesce"
		}
		b.Run(name, func(b *testing.B) {
			rt := stm.New(stm.Config{Algorithm: stm.MLWT, CM: stm.CMNone, NoQuiesce: noQ})
			words := make([]*stm.TWord, 256)
			for i := range words {
				words[i] = stm.NewTWord(0)
			}
			b.RunParallel(func(pb *testing.PB) {
				th := rt.NewThread()
				i := 0
				for pb.Next() {
					w := words[i%256]
					i++
					_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
						w.Store(tx, w.Load(tx)+1)
					})
				}
			})
		})
	}
}

// Ablation 7: emulated hardware TM on the memcached workload — §5's claim
// that "hardware TM will not achieve its full potential as long as serialized
// transactions are the common case". The onCommit branch (no mandatory
// serialization) lets hardware transactions run; the pre-Max Callable branch
// serializes constantly, so hardware transactions keep aborting on the lock
// subscription and falling back.

func BenchmarkAblationHTMSerialization(b *testing.B) {
	htm := stm.Config{Algorithm: stm.HTM, CM: stm.CMSerialize, HTMCapacity: 512}
	for _, br := range []engine.Branch{engine.IPOnCommit, engine.IPCallable} {
		br := br
		b.Run(br.String(), func(b *testing.B) {
			var fallbacks, serial, commits uint64
			for i := 0; i < b.N; i++ {
				cfg := htm
				c := engine.New(engine.Config{Branch: br, STM: &cfg, MemLimit: 4 << 20, HashPower: 10})
				c.Start()
				res := memslap.RunDirect(c, memslap.Config{Concurrency: 4, ExecuteNumber: 1500, KeySpace: 1024, ValueSize: 256})
				s := c.Runtime().Stats()
				fallbacks, serial, commits = s.HTMFallbacks, s.SerialCommits, s.Commits
				c.Stop()
				_ = res
			}
			b.ReportMetric(float64(fallbacks), "htm-fallbacks")
			if commits > 0 {
				b.ReportMetric(100*float64(serial)/float64(commits), "serial-%")
			}
		})
	}
}

// Ablation 8: the three condition-synchronization regimes on the onCommit
// code base — semaphores with the post inline (pre-onCommit shape), posts
// deferred to onCommit handlers (the paper's solution), and the Retry
// primitive §5 asks for (no wake-up calls at all).

func BenchmarkAblationCondSync(b *testing.B) {
	type mode struct {
		name  string
		br    engine.Branch
		retry bool
	}
	for _, m := range []mode{
		{"sem-inline(lib)", engine.IPLib, false},
		{"sem-oncommit", engine.IPOnCommit, false},
		{"retry-primitive", engine.IPOnCommit, true},
	} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := engine.New(engine.Config{
					Branch:        m.br,
					MemLimit:      2 << 20,
					HashPower:     10,
					Automove:      true,
					RetryCondSync: m.retry,
				})
				c.Start()
				res := memslap.RunDirect(c, memslap.Config{Concurrency: 4, ExecuteNumber: 2000, KeySpace: 2048, ValueSize: 512})
				c.Stop()
				b.ReportMetric(res.OpsPerSec(), "ops/s")
			}
		})
	}
}

// Transactional data-structure microbenchmarks (internal/tmds): the classic
// STM workloads, per algorithm.

func BenchmarkTmdsListLookup(b *testing.B) {
	for _, alg := range []stm.Algorithm{stm.MLWT, stm.LazyAlg, stm.NOrec} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			rt := stm.New(stm.Config{Algorithm: alg})
			th := rt.NewThread()
			l := tmds.NewList()
			_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
				for k := uint64(0); k < 128; k++ {
					l.Insert(tx, k*2, nil)
				}
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					l.Contains(tx, uint64(i%256))
				})
			}
		})
	}
}

func BenchmarkTmdsTreapMixed(b *testing.B) {
	for _, alg := range []stm.Algorithm{stm.MLWT, stm.LazyAlg, stm.NOrec} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			rt := stm.New(stm.Config{Algorithm: alg})
			th := rt.NewThread()
			tr := tmds.NewTreap()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i*2654435761) % 4096
				_ = th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
					switch i % 10 {
					case 0:
						tr.Remove(tx, k)
					case 1, 2:
						tr.Insert(tx, k, nil)
					default:
						tr.Contains(tx, k)
					}
				})
			}
		})
	}
}

// BenchmarkProtocolRoundTrip measures the full text-protocol path in-memory
// (parser + engine, no sockets).

func BenchmarkProtocolSetGet(b *testing.B) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 10, MemLimit: 16 << 20})
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	val := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("proto-%04d", i%1024))
		if i%10 == 0 {
			w.Set(key, 0, 0, val)
		} else {
			w.Get(key)
		}
	}
}

// BenchmarkMemslapDirect is the core workload loop on the best branch, for
// quick regressions.

func BenchmarkMemslapDirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := engine.New(engine.Config{Branch: engine.IPNoLock, MemLimit: 8 << 20, HashPower: 10})
		c.Start()
		res := memslap.RunDirect(c, memslap.Config{Concurrency: 4, ExecuteNumber: 2000, KeySpace: 2048, ValueSize: 512})
		c.Stop()
		b.ReportMetric(res.OpsPerSec(), "ops/s")
	}
}
