package item

import (
	"fmt"
	"testing"

	"repro/internal/access"
	"repro/internal/stm"
)

// fnv mirrors assoc.Hash (importing assoc here would be an import cycle).
func fnv(key []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// ctxs returns both access contexts so every test runs under direct and
// transactional access.
func forEachCtx(t *testing.T, fn func(t *testing.T, run func(func(access.Ctx)))) {
	t.Helper()
	t.Run("direct", func(t *testing.T) {
		fn(t, func(body func(access.Ctx)) { body(access.DirectCtx{}) })
	})
	t.Run("tx", func(t *testing.T) {
		rt := stm.New(stm.Config{})
		th := rt.NewThread()
		fn(t, func(body func(access.Ctx)) {
			err := th.Run(stm.Props{Kind: stm.Atomic}, func(tx *stm.Tx) {
				body(access.TxCtx{T: tx, Profile: access.Profile{TxVolatiles: true, SafeLibc: true, OnCommitIO: true}})
			})
			if err != nil {
				t.Fatalf("tx: %v", err)
			}
		})
	})
}

func newItem(key string, nbytes int) *Item {
	k := []byte(key)
	return New(k, fnv(k), 0, 0, nbytes, 1)
}

func TestLinkedFlag(t *testing.T) {
	forEachCtx(t, func(t *testing.T, run func(func(access.Ctx))) {
		it := newItem("k", 4)
		run(func(c access.Ctx) {
			if it.Linked(c) {
				t.Error("fresh item linked")
			}
			it.SetLinked(c, true)
			if !it.Linked(c) {
				t.Error("SetLinked(true) lost")
			}
			it.SetLinked(c, false)
			if it.Linked(c) {
				t.Error("SetLinked(false) lost")
			}
		})
	})
}

func TestRefcounting(t *testing.T) {
	forEachCtx(t, func(t *testing.T, run func(func(access.Ctx))) {
		it := newItem("k", 4)
		run(func(c access.Ctx) {
			if got := it.RefIncr(c); got != 1 {
				t.Errorf("RefIncr = %d", got)
			}
			if got := it.RefIncr(c); got != 2 {
				t.Errorf("RefIncr = %d", got)
			}
			if got := it.RefDecr(c); got != 1 {
				t.Errorf("RefDecr = %d", got)
			}
			if got := it.RefGet(c); got != 1 {
				t.Errorf("RefGet = %d", got)
			}
		})
	})
}

func TestExpired(t *testing.T) {
	forEachCtx(t, func(t *testing.T, run func(func(access.Ctx))) {
		run(func(c access.Ctx) {
			forever := newItem("f", 1)
			if forever.Expired(c, 1e9) {
				t.Error("exptime 0 expired")
			}
			it := New([]byte("k"), 1, 0, 100, 1, 0)
			if it.Expired(c, 99) {
				t.Error("expired before exptime")
			}
			if !it.Expired(c, 100) {
				t.Error("not expired at exptime")
			}
		})
	})
}

func TestLRUOrdering(t *testing.T) {
	forEachCtx(t, func(t *testing.T, run func(func(access.Ctx))) {
		l := NewLRU(4)
		items := make([]*Item, 5)
		for i := range items {
			items[i] = newItem(fmt.Sprintf("k%d", i), 4)
		}
		run(func(c access.Ctx) {
			for _, it := range items {
				l.Link(c, it)
			}
			if got := l.Len(c, 1); got != 5 {
				t.Fatalf("Len = %d", got)
			}
			if l.Head(c, 1) != items[4] {
				t.Error("head is not most recent")
			}
			if l.Tail(c, 1) != items[0] {
				t.Error("tail is not least recent")
			}
			// Touch the tail: it becomes head.
			l.Touch(c, items[0], 42)
			if l.Head(c, 1) != items[0] || l.Tail(c, 1) != items[1] {
				t.Error("Touch did not move item to head")
			}
			if got := c.Word(items[0].Time); got != 42 {
				t.Errorf("Touch time = %d", got)
			}
			// Unlink middle, head, tail.
			l.Unlink(c, items[3])
			l.Unlink(c, items[0])
			l.Unlink(c, items[1])
			if got := l.Len(c, 1); got != 2 {
				t.Fatalf("Len after unlinks = %d", got)
			}
			// Walk tail -> head and check consistency.
			seen := 0
			for it := l.Tail(c, 1); it != nil; it = AsItem(c.Any(it.Prev)) {
				seen++
			}
			if seen != 2 {
				t.Errorf("walk saw %d items, want 2", seen)
			}
		})
	})
}

func TestLRUClassIsolation(t *testing.T) {
	forEachCtx(t, func(t *testing.T, run func(func(access.Ctx))) {
		l := NewLRU(3)
		a := New([]byte("a"), 1, 0, 0, 1, 0)
		b := New([]byte("b"), 2, 0, 0, 1, 2)
		run(func(c access.Ctx) {
			l.Link(c, a)
			l.Link(c, b)
			if l.Head(c, 0) != a || l.Head(c, 2) != b {
				t.Error("classes mixed")
			}
			if l.Head(c, 1) != nil {
				t.Error("empty class non-empty")
			}
		})
	})
}

func TestAsItemNil(t *testing.T) {
	if AsItem(nil) != nil {
		t.Error("AsItem(nil) != nil")
	}
	var typed *Item
	if AsItem(any(typed)) != nil {
		t.Error("AsItem(typed nil) != nil")
	}
	it := newItem("k", 1)
	if AsItem(any(it)) != it {
		t.Error("AsItem lost identity")
	}
}

func TestSizeFor(t *testing.T) {
	if SizeFor(5, 100) <= 105 {
		t.Error("SizeFor must include header and suffix overhead")
	}
	it := newItem("hello", 100)
	got := it.TotalBytes(access.DirectCtx{})
	if got != SizeFor(5, 100) {
		t.Errorf("TotalBytes = %d, want %d", got, SizeFor(5, 100))
	}
}
