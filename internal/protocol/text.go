// Package protocol implements the memcached wire protocols — the full text
// protocol and the binary protocol subset memslap --binary exercises — on top
// of an engine.Worker. The server hands each connection a Conn; Serve
// auto-detects the protocol from the first byte, as memcached does.
package protocol

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/mcstats"
	"repro/internal/txobs"
	"repro/internal/txtrace"
)

// Version is the version string reported to clients; the paper's study uses
// memcached 1.4.15, so we advertise a lineage-compatible tag.
const Version = "1.4.15-tm-repro"

// ErrQuit reports a clean client-requested shutdown of the connection.
var ErrQuit = errors.New("protocol: quit")

// ErrProtocol marks connection-fatal framing violations (a frame truncated
// mid-body, an unparseable binary header): errors the server counts as
// protocol-caused rather than transport-caused. Recoverable mistakes get a
// CLIENT_ERROR / status reply instead and never surface here.
var ErrProtocol = errors.New("protocol: malformed frame")

// MaxKeyLen is the protocol's 250-byte key limit.
const MaxKeyLen = 250

// MaxBodyLen bounds any value/body a client may declare (8 MiB, ample for
// the 1 MiB slab-page limit); larger claims are drained, not allocated.
const MaxBodyLen = 8 << 20

// Control lets the transport owner (the server) interpose on command
// boundaries: arming idle/read deadlines, tracking busy state for graceful
// drain, refusing new commands at shutdown. All methods run on the
// connection's own goroutine.
type Control interface {
	// BeforeCommand runs before blocking for the next command. A non-nil
	// error stops serving (Serve returns it).
	BeforeCommand() error
	// CommandStarted runs once the first byte of a command has arrived.
	CommandStarted()
	// CommandDone runs after the command's reply has been written.
	CommandDone()
}

// buffersWriter is implemented by transports (the server's connection
// wrapper) that can put a gathered response on the wire as one writev-style
// write, without copying the slices together first.
type buffersWriter interface {
	WriteBuffers(bufs net.Buffers) (int64, error)
}

// Conn serves one client connection.
type Conn struct {
	worker *engine.Worker
	r      *bufio.Reader
	w      *bufio.Writer
	bw     buffersWriter // non-nil when the transport supports gathered writes

	// transport and fbr let pooled connections re-attach buffers: the bufio
	// pair is Reset onto these on every AttachBuffers. Classic (NewConn)
	// connections keep their buffers for life and never touch them.
	transport io.ReadWriter
	fbr       *flushBeforeRead
	pooled    bool

	// trackShard/affinity record which TM shard the last command routed to
	// (-1 for multi-shard or shard-agnostic commands). The event-loop
	// transport reads Affinity after each burst to pick the request queue.
	trackShard bool
	affinity   int

	ctl      Control
	connErrs *mcstats.ConnErrors
	tstats   TransportStats

	// spans is the connection's request-span buffer (nil when the transport
	// owner did not wire tracing). One Begin/End pair brackets every
	// dispatched command; with tracing off, Begin is a single atomic load.
	spans *txtrace.ConnSpans

	gatActive  bool
	gatExptime uint64

	// tx is the connection's open wire transaction (nil outside txbegin/
	// txcommit). It lives entirely in this struct — no engine resource is
	// held — so dropping the connection drops the transaction.
	tx *txState
}

// NewConn wraps a transport with a protocol handler bound to a worker.
//
// Replies are batched: they accumulate in the write buffer while further
// pipelined commands are already readable and go to the transport in one
// write when the pipeline drains (see flushBeforeRead), when the buffer
// fills, or — for large multi-get responses on capable transports — as one
// gathered writev-style write.
func NewConn(worker *engine.Worker, rw io.ReadWriter) *Conn {
	c := newConnBase(worker, rw)
	c.w = bufio.NewWriter(rw)
	c.r = bufio.NewReader(c.fbr)
	return c
}

// NewConnPooled builds a connection whose read/write buffers come from a
// process-wide sync.Pool and are attached only while the connection is being
// served (AttachBuffers / ReleaseBuffers). Idle pooled connections hold zero
// buffer bytes. The worker binding is also deferred: the event-loop
// transport lends each connection its execution worker's engine handle via
// SetWorker at the start of every burst.
func NewConnPooled(rw io.ReadWriter) *Conn {
	c := newConnBase(nil, rw)
	c.pooled = true
	return c
}

func newConnBase(worker *engine.Worker, rw io.ReadWriter) *Conn {
	c := &Conn{worker: worker, transport: rw, affinity: -1}
	if bw, ok := rw.(buffersWriter); ok {
		c.bw = bw
	}
	c.fbr = &flushBeforeRead{c: c, r: rw}
	return c
}

// flushBeforeRead interposes on the read side's buffer refills. The
// bufio.Reader pulls from the transport only when its buffer cannot satisfy a
// request — i.e. exactly when the connection is about to block waiting for
// the client — so flushing pending replies here turns per-command flushes
// into one gathered write per pipelined batch while making it impossible to
// block against a client that is itself waiting for a reply.
type flushBeforeRead struct {
	c *Conn
	r io.Reader
}

func (f *flushBeforeRead) Read(p []byte) (int, error) {
	if err := f.c.flushNow(); err != nil {
		return 0, err
	}
	return f.r.Read(p)
}

// SetControl installs command-boundary hooks (nil disables them).
func (c *Conn) SetControl(ctl Control) { c.ctl = ctl }

// SetConnErrors supplies the server's connection-error counters for the
// `stats` command to report (nil omits the lines).
func (c *Conn) SetConnErrors(e *mcstats.ConnErrors) { c.connErrs = e }

// SetSpans installs the connection's request-span buffer (nil disables
// request tracing for this connection).
func (c *Conn) SetSpans(cs *txtrace.ConnSpans) { c.spans = cs }

// SetWorker rebinds the connection to an engine worker. The event-loop
// transport shares a small pool of workers across all connections (a worker
// registers per-shard stat blocks for life, so one per connection would leak
// at 100k conns) and lends one to the connection for each burst.
func (c *Conn) SetWorker(w *engine.Worker) { c.worker = w }

// SetShardTracking enables per-command shard-affinity recording (see
// Affinity). Off by default; the single-shard transport never asks.
func (c *Conn) SetShardTracking(on bool) {
	c.trackShard = on
	c.affinity = -1
}

// Affinity reports the TM shard the connection's last routing-decidable
// command touched, or -1 when the last command was multi-shard (multi-key
// get, flush_all, stats, wire transactions) or tracking is off. The
// event-loop transport uses it to keep a connection on a shard-affine
// worker queue.
func (c *Conn) Affinity() int { return c.affinity }

// noteKey records the shard of a single-key command for Affinity.
func (c *Conn) noteKey(key []byte) {
	if c.trackShard {
		c.affinity = c.worker.ShardOf(key)
	}
}

// noteShared marks the current command as not shard-routable.
func (c *Conn) noteShared() {
	if c.trackShard {
		c.affinity = -1
	}
}

// InputBuffered reports how many request bytes are already buffered in
// userspace. The event-loop transport keeps serving while this is non-zero:
// parking a connection with buffered input would deadlock it, because the
// poller only sees kernel-level readiness.
func (c *Conn) InputBuffered() int {
	if c.r == nil {
		return 0
	}
	return c.r.Buffered()
}

// Flush writes any buffered replies to the transport.
func (c *Conn) Flush() error { return c.flushNow() }

// Serve processes commands until EOF, quit, or a transport error. Any
// buffered replies are flushed before it returns.
func (c *Conn) Serve() error {
	err := c.serveLoop()
	c.tx = nil // disconnect is the implicit txabort
	if ferr := c.flushNow(); err == nil {
		err = ferr
	}
	return err
}

func (c *Conn) serveLoop() error {
	for {
		if err := c.ServeOne(); err != nil {
			if errors.Is(err, ErrQuit) || errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// ServeOne serves exactly one command, including the Control boundary hooks.
// It returns io.EOF on clean peer close and ErrQuit on a quit command; the
// caller owns mapping those to a clean shutdown. The event-loop transport
// calls this in a burst while InputBuffered is non-zero, then parks the
// connection back in the poller.
func (c *Conn) ServeOne() error {
	if c.pooled && c.r == nil {
		c.AttachBuffers()
	}
	if c.ctl != nil {
		if err := c.ctl.BeforeCommand(); err != nil {
			return err
		}
	}
	first, err := c.r.Peek(1)
	if err != nil {
		return err
	}
	if c.ctl != nil {
		c.ctl.CommandStarted()
	}
	if first[0] >= binMagicReq {
		// Any high first byte is framed as binary; serveBinaryOne rejects
		// wrong magic with a status reply rather than misparsing the
		// frame as a text command line.
		err = c.serveBinaryOne()
	} else {
		err = c.serveTextOne()
	}
	if c.ctl != nil {
		c.ctl.CommandDone()
	}
	return err
}

// serveTextOne handles a single text-protocol command line.
func (c *Conn) serveTextOne() error {
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if len(line) == 0 {
		return c.reply("ERROR\r\n")
	}
	fields := bytes.Fields(line)
	cmd := string(fields[0])
	args := fields[1:]

	// Request tracing: one atomic load (inside Begin) when tracing is off.
	// When a span opens, the worker's STM threads deliver every transaction
	// event of this command into it until End.
	if cs := c.spans; cs != nil && cs.Begin(cmd) {
		c.worker.SetTxTrace(cs)
		err := c.dispatchTextTimed(cmd, args)
		c.worker.SetTxTrace(nil)
		cs.End()
		return err
	}
	return c.dispatchTextTimed(cmd, args)
}

// dispatchTextTimed is dispatchText behind the per-command latency gate: one
// observer load when `stats tm` tracing was never enabled, one timestamp pair
// per command when it is on.
func (c *Conn) dispatchTextTimed(cmd string, args [][]byte) error {
	if o := c.worker.Observer(); o != nil && o.Enabled() {
		t0 := time.Now()
		err := c.dispatchText(cmd, args)
		o.ObserveCommand(cmd, time.Since(t0))
		return err
	}
	return c.dispatchText(cmd, args)
}

// dispatchText routes one parsed text command. Affinity defaults to shared
// (-1) per command; the single-key handlers below overwrite it with the
// key's shard once parsed.
func (c *Conn) dispatchText(cmd string, args [][]byte) error {
	c.noteShared()
	switch cmd {
	case "txbegin":
		return c.cmdTxBegin(args)
	case "txcommit":
		return c.cmdTxCommit()
	case "txabort":
		return c.cmdTxAbort(args)
	}
	if c.tx != nil {
		return c.dispatchTextInTx(cmd, args)
	}
	switch cmd {
	case "get", "gets":
		return c.cmdGet(args, cmd == "gets", false)
	case "gat", "gats":
		return c.cmdGat(args, cmd == "gats")
	case "set", "add", "replace", "append", "prepend", "cas":
		return c.cmdStore(cmd, args)
	case "delete":
		return c.cmdDelete(args)
	case "incr", "decr":
		return c.cmdDelta(cmd, args)
	case "touch":
		return c.cmdTouch(args)
	case "stats":
		if len(args) > 0 {
			switch string(args[0]) {
			case "reset":
				// ResetStats clears engine counters AND the fingerprint
				// observer exactly once (cache-global); the transport's
				// counters are reset here because the engine cannot see
				// them. Both are idempotent Store(0)s, so racing resets
				// from two connections stay coherent.
				c.worker.ResetStats()
				if c.tstats != nil {
					c.tstats.ResetTransportCounters()
				}
				return c.reply("RESET\r\n")
			case "slabs":
				return c.cmdStatsSlabs()
			case "tm":
				return c.cmdStatsTM()
			case "tmctl":
				return c.cmdStatsTMCtl()
			case "conflicts":
				return c.cmdStatsConflicts()
			case "latency":
				return c.cmdStatsLatency()
			case "slowlog":
				return c.cmdStatsSlowlog()
			case "fingerprint":
				return c.cmdStatsFingerprint()
			case "eventloop":
				return c.cmdStatsEventLoop()
			}
		}
		return c.cmdStats()
	case "flush_all":
		return c.cmdFlushAll(args)
	case "version":
		return c.reply("VERSION " + Version + "\r\n")
	case "verbosity":
		if len(args) >= 1 {
			return c.replyMaybe(args, "OK\r\n")
		}
		return c.clientError("usage: verbosity <level>")
	case "quit":
		return ErrQuit
	default:
		return c.reply("ERROR\r\n")
	}
}

func (c *Conn) cmdGat(args [][]byte, withCAS bool) error {
	if len(args) < 2 {
		return c.clientError("gat requires exptime and a key")
	}
	exptime, err := strconv.ParseUint(string(args[0]), 10, 64)
	if err != nil {
		return c.clientError("invalid exptime argument")
	}
	c.gatExptime = absoluteExptime(c.worker, exptime)
	defer func() { c.gatExptime = 0; c.gatActive = false }()
	c.gatActive = true
	return c.cmdGet(args[1:], withCAS, true)
}

var (
	crlf    = []byte("\r\n")
	endLine = []byte("END\r\n")
)

// writevThreshold: gathered multi-get responses at least this large skip the
// bufio copy and go to the transport as a single writev-style write.
const writevThreshold = 4096

func (c *Conn) cmdGet(args [][]byte, withCAS, touch bool) error {
	if len(args) == 0 {
		return c.clientError("get requires a key")
	}
	for _, key := range args {
		if len(key) > MaxKeyLen {
			return c.clientError("key too long")
		}
	}
	if touch && c.gatActive {
		// gat updates expiries — a writing command — so it keeps the per-key
		// item sections.
		for _, key := range args {
			val, flags, cas, ok := c.worker.GetAndTouch(key, c.gatExptime)
			if !ok {
				continue
			}
			if withCAS {
				fmt.Fprintf(c.w, "VALUE %s %d %d %d\r\n", key, flags, len(val), cas)
			} else {
				fmt.Fprintf(c.w, "VALUE %s %d %d\r\n", key, flags, len(val))
			}
			c.w.Write(val)
			c.w.Write(crlf)
		}
		return c.reply("END\r\n")
	}
	if len(args) == 1 {
		c.noteKey(args[0])
	}
	// get k1 k2 ...: one batched read-only transaction per bounded key group
	// (engine.MultiGetBatch) instead of one transaction per key, and one
	// gathered response instead of one write per VALUE line.
	results := c.worker.GetMulti(args)
	bufs := make(net.Buffers, 0, 3*len(args)+1)
	total := 0
	for i, key := range args {
		r := &results[i]
		if !r.Found {
			continue
		}
		var hdr []byte
		if withCAS {
			hdr = fmt.Appendf(nil, "VALUE %s %d %d %d\r\n", key, r.Flags, len(r.Value), r.CAS)
		} else {
			hdr = fmt.Appendf(nil, "VALUE %s %d %d\r\n", key, r.Flags, len(r.Value))
		}
		bufs = append(bufs, hdr, r.Value, crlf)
		total += len(hdr) + len(r.Value) + 2
	}
	bufs = append(bufs, endLine)
	if c.bw != nil && total >= writevThreshold {
		if err := c.flushNow(); err != nil {
			return err
		}
		if c.connErrs != nil {
			c.connErrs.WritevBatches.Add(1)
		}
		_, err := c.bw.WriteBuffers(bufs)
		return err
	}
	for _, b := range bufs {
		c.w.Write(b)
	}
	return c.flushIfIdle()
}

func (c *Conn) cmdStore(cmd string, args [][]byte) error {
	want := 4
	if cmd == "cas" {
		want = 5
	}
	if len(args) < want {
		c.reply("ERROR\r\n")
		return nil
	}
	key := args[0]
	flags, err1 := strconv.ParseUint(string(args[1]), 10, 32)
	exptime, err2 := strconv.ParseUint(string(args[2]), 10, 64)
	nbytes, err3 := strconv.Atoi(string(args[3]))
	var casUnique uint64
	var err4 error
	noreplyAt := 4
	if cmd == "cas" {
		casUnique, err4 = strconv.ParseUint(string(args[4]), 10, 64)
		noreplyAt = 5
	}
	noreply := len(args) > noreplyAt && string(args[noreplyAt]) == "noreply"
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil || nbytes < 0 ||
		nbytes > MaxBodyLen || len(key) > MaxKeyLen {
		// Still must consume the data block to stay in sync — without
		// allocating whatever size the client claimed.
		if nbytes >= 0 {
			c.discard(nbytes + 2)
		}
		if noreply {
			return c.flushIfIdle()
		}
		return c.clientError("bad command line format")
	}
	data := make([]byte, nbytes)
	if _, err := io.ReadFull(c.r, data); err != nil {
		return fmt.Errorf("%w: set data block truncated: %v", ErrProtocol, err)
	}
	// The data block must be terminated by a bare CRLF. Reading to the next
	// newline (rather than exactly two bytes) means a short or long data
	// block leaves the reader aligned on a line boundary: the connection
	// stays usable after the error, as memcached's conn_swallow state
	// guarantees.
	term, err := c.readLine()
	if err != nil {
		return fmt.Errorf("%w: set data block unterminated: %v", ErrProtocol, err)
	}
	if len(term) != 0 {
		if noreply {
			return c.flushIfIdle()
		}
		return c.clientError("bad data chunk")
	}
	// Relative expiry (≤ 30 days, memcached convention) is converted here.
	exptime = absoluteExptime(c.worker, exptime)

	c.noteKey(key)
	var res engine.StoreResult
	switch cmd {
	case "set":
		res = c.worker.Set(key, uint32(flags), exptime, data)
	case "add":
		res = c.worker.Add(key, uint32(flags), exptime, data)
	case "replace":
		res = c.worker.Replace(key, uint32(flags), exptime, data)
	case "append":
		res = c.worker.Append(key, data)
	case "prepend":
		res = c.worker.Prepend(key, data)
	case "cas":
		res = c.worker.CAS(key, uint32(flags), exptime, data, casUnique)
	}
	if noreply {
		return c.flushIfIdle()
	}
	return c.reply(res.String() + "\r\n")
}

func (c *Conn) cmdDelete(args [][]byte) error {
	if len(args) < 1 {
		return c.clientError("delete requires a key")
	}
	c.noteKey(args[0])
	if c.worker.Delete(args[0]) {
		return c.replyMaybe(args[1:], "DELETED\r\n")
	}
	return c.replyMaybe(args[1:], "NOT_FOUND\r\n")
}

func (c *Conn) cmdDelta(cmd string, args [][]byte) error {
	if len(args) < 2 {
		return c.clientError("incr/decr require key and value")
	}
	delta, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		return c.clientError("invalid numeric delta argument")
	}
	c.noteKey(args[0])
	var v uint64
	var res engine.DeltaResult
	if cmd == "incr" {
		v, res = c.worker.Incr(args[0], delta)
	} else {
		v, res = c.worker.Decr(args[0], delta)
	}
	switch res {
	case engine.DeltaOK:
		return c.replyMaybe(args[2:], strconv.FormatUint(v, 10)+"\r\n")
	case engine.DeltaNotFound:
		return c.replyMaybe(args[2:], "NOT_FOUND\r\n")
	default:
		return c.clientError("cannot increment or decrement non-numeric value")
	}
}

func (c *Conn) cmdTouch(args [][]byte) error {
	if len(args) < 2 {
		return c.clientError("touch requires key and exptime")
	}
	exptime, err := strconv.ParseUint(string(args[1]), 10, 64)
	if err != nil {
		return c.clientError("invalid exptime argument")
	}
	c.noteKey(args[0])
	if c.worker.Touch(args[0], absoluteExptime(c.worker, exptime)) {
		return c.replyMaybe(args[2:], "TOUCHED\r\n")
	}
	return c.replyMaybe(args[2:], "NOT_FOUND\r\n")
}

func (c *Conn) cmdStats() error {
	s := c.worker.Stats()
	stat := func(k string, v uint64) { fmt.Fprintf(c.w, "STAT %s %d\r\n", k, v) }
	fmt.Fprintf(c.w, "STAT version %s\r\n", Version)
	stat("cmd_get", s.GetCmds)
	stat("get_hits", s.GetHits)
	stat("get_misses", s.GetMisses)
	stat("cmd_set", s.SetCmds)
	stat("delete_hits", s.DeleteHits)
	stat("delete_misses", s.DeleteMiss)
	stat("incr_hits", s.IncrHits)
	stat("incr_misses", s.IncrMiss)
	stat("cas_hits", s.CasHits)
	stat("cas_misses", s.CasMiss)
	stat("cas_badval", s.CasBadval)
	stat("cmd_touch", s.TouchCmds)
	stat("curr_items", s.CurrItems)
	stat("total_items", s.TotalItems)
	stat("bytes", s.CurrBytes)
	stat("evictions", s.Evictions)
	stat("expired_unfetched", s.Expired)
	stat("slabs_moved", s.Reassigned)
	stat("hash_expansions", s.HashExpands)
	stat("hash_items", s.HashItems)
	stat("hash_buckets", s.HashBuckets)
	stat("limit_maxbytes", s.SlabBytes)
	stat("shards", uint64(c.worker.NumShards()))
	stat("tm_transactions", s.STM.Commits)
	stat("tm_aborts", s.STM.Aborts)
	stat("tm_inflight_switch", s.STM.InFlightSwitch)
	stat("tm_start_serial", s.STM.StartSerial)
	stat("tm_abort_serial", s.STM.AbortSerial)
	stat("tm_watchdog_backoff", s.STM.WatchdogBackoffs)
	stat("tm_watchdog_serialize", s.STM.WatchdogSerializes)
	stat("tm_htm_capacity_aborts", s.STM.HTMCapacityAborts)
	stat("tm_htm_fallbacks", s.STM.HTMFallbacks)
	stat("tm_ro_fast_commit", s.STM.ROFastCommits)
	stat("tm_ro_upgrade", s.STM.ROUpgrades)
	stat("tx_commits", s.TxCommits)
	stat("tx_conflicts", s.TxConflicts)
	stat("tx_serial_fallbacks", s.TxSerialFallbacks)
	if c.connErrs != nil {
		stat("conn_errors_io", c.connErrs.IO.Load())
		stat("conn_errors_protocol", c.connErrs.Protocol.Load())
		stat("conn_errors_timeout", c.connErrs.Timeout.Load())
		stat("conn_flushes", c.connErrs.Flushes.Load())
		stat("conn_batched_replies", c.connErrs.BatchedReplies.Load())
		stat("conn_writev_batches", c.connErrs.WritevBatches.Load())
	}
	inuse, idle := BufferGauges()
	stat("conn_buffers_inuse", uint64(inuse))
	stat("conn_buffers_idle", uint64(idle))
	return c.reply("END\r\n")
}

// obsReport fetches the observability report, or replies with a bare
// "STAT tracing 0" block when tracing was never enabled on this cache.
func (c *Conn) obsReport(topOrecs int) (txobs.Report, bool, error) {
	o := c.worker.Observer()
	if o == nil {
		fmt.Fprintf(c.w, "STAT tracing 0\r\n")
		return txobs.Report{}, false, c.reply("END\r\n")
	}
	return o.Report(topOrecs), true, nil
}

// cmdStatsTM reports event-kind counts and attributed serialization/abort
// causes (`stats tm`). Cause strings contain spaces, so they ride in the
// value position after their count.
func (c *Conn) cmdStatsTM() error {
	// Core transaction counters come from the runtime stats, not the tracer,
	// so "stats tm" answers the read-only fast-path questions (§5 experiment
	// methodology) even with event tracing off.
	s := c.worker.Stats().STM
	fmt.Fprintf(c.w, "STAT commits %d\r\n", s.Commits)
	fmt.Fprintf(c.w, "STAT aborts %d\r\n", s.Aborts)
	fmt.Fprintf(c.w, "STAT ro_fast_commit %d\r\n", s.ROFastCommits)
	fmt.Fprintf(c.w, "STAT ro_upgrade %d\r\n", s.ROUpgrades)
	fmt.Fprintf(c.w, "STAT start_serial %d\r\n", s.StartSerial)
	fmt.Fprintf(c.w, "STAT inflight_switch %d\r\n", s.InFlightSwitch)
	// Per-domain breakdown: each shard owns an independent STM runtime, so
	// the merged counters above decompose exactly into these lines. Each
	// shard's live algorithm and swap counters ride along — under the
	// feedback controller these can differ per shard and change mid-run.
	if shards := c.worker.ShardStats(); len(shards) > 1 {
		rts := c.worker.Runtimes()
		fmt.Fprintf(c.w, "STAT shards %d\r\n", len(shards))
		for i, ss := range shards {
			fmt.Fprintf(c.w, "STAT shard_%d_commits %d\r\n", i, ss.Commits)
			fmt.Fprintf(c.w, "STAT shard_%d_aborts %d\r\n", i, ss.Aborts)
			fmt.Fprintf(c.w, "STAT shard_%d_ro_fast_commit %d\r\n", i, ss.ROFastCommits)
			if rts != nil {
				fmt.Fprintf(c.w, "STAT shard_%d_algorithm %s\r\n", i, rts[i].Algorithm())
			}
			fmt.Fprintf(c.w, "STAT shard_%d_algo_swaps %d\r\n", i, ss.AlgoSwaps)
		}
	}
	r, ok, err := c.obsReport(0)
	if !ok {
		return err
	}
	fmt.Fprintf(c.w, "STAT tracing %d\r\n", boolInt(r.Enabled))
	fmt.Fprintf(c.w, "STAT events %d\r\n", r.Events)
	for _, k := range sortedKeys(r.Kinds) {
		fmt.Fprintf(c.w, "STAT events_%s %d\r\n", k, r.Kinds[k])
	}
	for i, cc := range r.SerialCauses {
		fmt.Fprintf(c.w, "STAT serial_cause_%d %d %s\r\n", i, cc.Count, cc.Cause)
	}
	for i, cc := range r.AbortCauses {
		fmt.Fprintf(c.w, "STAT abort_cause_%d %d %s\r\n", i, cc.Count, cc.Cause)
	}
	return c.reply("END\r\n")
}

// cmdStatsTMCtl reports the feedback controller's view (`stats tmctl`): the
// per-shard mode ladder position, live algorithm, last-window signals and
// swap counters. A server without -tmctl replies with a bare disabled marker.
func (c *Conn) cmdStatsTMCtl() error {
	ctl := c.worker.Controller()
	if ctl == nil {
		fmt.Fprintf(c.w, "STAT tmctl 0\r\n")
		return c.reply("END\r\n")
	}
	st := ctl.Snapshot()
	fmt.Fprintf(c.w, "STAT tmctl 1\r\n")
	fmt.Fprintf(c.w, "STAT interval_ms %d\r\n", st.Interval.Milliseconds())
	fmt.Fprintf(c.w, "STAT degrades %d\r\n", st.Degrades)
	fmt.Fprintf(c.w, "STAT promotes %d\r\n", st.Promotes)
	fmt.Fprintf(c.w, "STAT retunes %d\r\n", st.Retunes)
	fmt.Fprintf(c.w, "STAT anomaly_trips %d\r\n", st.AnomalyTrips)
	for _, s := range st.Shards {
		fmt.Fprintf(c.w, "STAT shard_%d_mode %s\r\n", s.Shard, s.Mode)
		fmt.Fprintf(c.w, "STAT shard_%d_algorithm %s\r\n", s.Shard, s.Algorithm)
		fmt.Fprintf(c.w, "STAT shard_%d_pinned %d\r\n", s.Shard, boolInt(s.Pinned))
		fmt.Fprintf(c.w, "STAT shard_%d_abort_ratio %.3f\r\n", s.Shard, s.AbortRatio)
		fmt.Fprintf(c.w, "STAT shard_%d_ro_share %.3f\r\n", s.Shard, s.ROShare)
		fmt.Fprintf(c.w, "STAT shard_%d_calm_windows %d\r\n", s.Shard, s.CalmWins)
		fmt.Fprintf(c.w, "STAT shard_%d_heal_backoff_shift %d\r\n", s.Shard, s.HealShift)
		fmt.Fprintf(c.w, "STAT shard_%d_degrades %d\r\n", s.Shard, s.Degrades)
		fmt.Fprintf(c.w, "STAT shard_%d_promotes %d\r\n", s.Shard, s.Promotes)
		fmt.Fprintf(c.w, "STAT shard_%d_retunes %d\r\n", s.Shard, s.Retunes)
	}
	return c.reply("END\r\n")
}

// cmdStatsConflicts reports the conflict heat map (`stats conflicts`):
// aborts and abort-serial escalations by named structure, then the hottest
// ownership records.
func (c *Conn) cmdStatsConflicts() error {
	r, ok, err := c.obsReport(16)
	if !ok {
		return err
	}
	fmt.Fprintf(c.w, "STAT tracing %d\r\n", boolInt(r.Enabled))
	for _, l := range r.ConflictLabels {
		fmt.Fprintf(c.w, "STAT conflicts_%s %d\r\n", l.Label, l.Count)
	}
	for _, l := range r.SerialLabels {
		fmt.Fprintf(c.w, "STAT abort_serial_%s %d\r\n", l.Label, l.Count)
	}
	if r.Shards > 1 {
		for _, l := range r.ShardConflicts {
			fmt.Fprintf(c.w, "STAT conflicts_%s %d\r\n", l.Label, l.Count)
		}
		fmt.Fprintf(c.w, "STAT cross_shard_orec_conflicts %d\r\n", r.CrossShardOrecConflicts)
	}
	for _, oc := range r.HotOrecs {
		fmt.Fprintf(c.w, "STAT orec_%d %d %s\r\n", oc.Orec, oc.Count, oc.LastLabel)
	}
	return c.reply("END\r\n")
}

// cmdStatsLatency reports the phase and per-command latency histograms
// (`stats latency`), one line per histogram, quantiles in nanoseconds.
func (c *Conn) cmdStatsLatency() error {
	r, ok, err := c.obsReport(0)
	if !ok {
		return err
	}
	fmt.Fprintf(c.w, "STAT tracing %d\r\n", boolInt(r.Enabled))
	hist := func(prefix string, m map[string]txobs.HistSnapshot) {
		for _, k := range sortedKeys(m) {
			s := m[k]
			fmt.Fprintf(c.w, "STAT %s_%s count=%d mean_ns=%d p50_ns=%d p95_ns=%d p99_ns=%d max_ns=%d\r\n",
				prefix, k, s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
		}
	}
	hist("phase", r.Phases)
	hist("cmd", r.Commands)
	return c.reply("END\r\n")
}

// cmdStatsSlowlog reports the request tracer's flight recorder
// (`stats slowlog`): mode and counters first, then one line per captured
// pathological span, newest last.
func (c *Conn) cmdStatsSlowlog() error {
	tr := c.worker.Tracer()
	if tr == nil {
		return c.reply("END\r\n")
	}
	fmt.Fprintf(c.w, "STAT trace_mode %s\r\n", tr.Mode())
	fmt.Fprintf(c.w, "STAT trace_requests %d\r\n", tr.Requests())
	fmt.Fprintf(c.w, "STAT trace_kept %d\r\n", tr.Kept())
	fmt.Fprintf(c.w, "STAT slowlog_len %d\r\n", tr.SlowlogLen())
	fmt.Fprintf(c.w, "STAT slowlog_dropped %d\r\n", tr.SlowlogDropped())
	fmt.Fprintf(c.w, "STAT est_p99_ns %d\r\n", tr.EstP99())
	for _, sp := range tr.Slowlog() {
		why, owner, label := sp.Keep, "", ""
		// Surface the last abort's attribution so the one-line view already
		// answers "who aborted me" without dumping the span tree.
		for i := len(sp.Events) - 1; i >= 0; i-- {
			ev := sp.Events[i]
			if ev.Kind == "abort" || ev.Kind == "abort_serial" {
				owner, label = ev.Owner, ev.Label
				break
			}
		}
		fmt.Fprintf(c.w,
			"STAT slow_%d cmd=%s conn=%d dur_us=%d aborts=%d max_retry=%d serialized=%d keep=%s owner=%s label=%s\r\n",
			sp.ID, sp.Cmd, sp.Conn, sp.DurNanos/1000, sp.Aborts, sp.MaxRetry,
			boolInt(sp.Serialized), why, orDash(owner), orDash(label))
	}
	return c.reply("END\r\n")
}

// orDash substitutes "-" for empty attribution fields so the slowlog lines
// stay whitespace-parseable.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// sortedKeys returns m's keys sorted (deterministic STAT ordering).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (c *Conn) cmdStatsSlabs() error {
	for _, s := range c.worker.SlabStats() {
		fmt.Fprintf(c.w, "STAT %d:chunk_size %d\r\n", s.Class, s.ChunkSize)
		fmt.Fprintf(c.w, "STAT %d:total_pages %d\r\n", s.Class, s.Pages)
		fmt.Fprintf(c.w, "STAT %d:used_chunks %d\r\n", s.Class, s.UsedChunks)
		fmt.Fprintf(c.w, "STAT %d:free_chunks %d\r\n", s.Class, s.FreeChunks)
	}
	return c.reply("END\r\n")
}

func (c *Conn) cmdFlushAll(args [][]byte) error {
	c.worker.FlushAll()
	return c.replyMaybe(args, "OK\r\n")
}

// ---------------------------------------------------------------------------
// helpers

// absoluteExptime converts relative expiry seconds (≤ 30 days) to absolute.
func absoluteExptime(w *engine.Worker, exptime uint64) uint64 {
	const thirtyDays = 60 * 60 * 24 * 30
	if exptime == 0 || exptime > thirtyDays {
		return exptime
	}
	return w.CacheNow() + exptime
}

func (c *Conn) readLine() ([]byte, error) {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = bytes.TrimRight(line, "\r\n")
	return line, nil
}

func (c *Conn) discard(n int) {
	if n > 0 {
		io.CopyN(io.Discard, c.r, int64(n))
	}
}

func (c *Conn) reply(s string) error {
	c.w.WriteString(s)
	return c.flushIfIdle()
}

// flushIfIdle flushes buffered replies unless more pipelined input is already
// readable, in which case replies keep gathering and leave in one write when
// the pipeline drains (flushBeforeRead) or the write buffer fills.
func (c *Conn) flushIfIdle() error {
	if c.r.Buffered() > 0 {
		if c.connErrs != nil {
			c.connErrs.BatchedReplies.Add(1)
		}
		return nil
	}
	return c.flushNow()
}

// flushNow writes any buffered replies to the transport. A pooled
// connection with buffers released (parked or torn down) has nothing
// buffered by definition.
func (c *Conn) flushNow() error {
	if c.w == nil || c.w.Buffered() == 0 {
		return nil
	}
	if c.connErrs != nil {
		c.connErrs.Flushes.Add(1)
	}
	return c.w.Flush()
}

// replyMaybe suppresses the reply when the trailing argument is "noreply".
func (c *Conn) replyMaybe(rest [][]byte, s string) error {
	if len(rest) > 0 && string(rest[len(rest)-1]) == "noreply" {
		return c.flushIfIdle()
	}
	return c.reply(s)
}

func (c *Conn) clientError(msg string) error {
	return c.replyError(&ClientError{Msg: msg, Status: StatusInvalidArgs})
}
