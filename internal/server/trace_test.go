package server

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/txtrace"
)

// TestDebugVarsGaugesAtOneShard is the satellite fix: /debug/vars must report
// shards and shard_stats even when the cache runs a single TM domain, plus
// the new tracing gauges.
func TestDebugVarsGaugesAtOneShard(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, Shards: 1, HashPower: 8})
	c.Start()
	defer c.Stop()
	ts := httptest.NewServer(NewDebugHandler(c))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"shards", "shard_stats", "trace_mode", "timeseries_seconds", "slowlog_len", "slowlog_dropped", "ring_dropped"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q at shards=1:\n%s", key, body)
		}
	}
	var shards int
	json.Unmarshal(vars["shards"], &shards)
	if shards != 1 {
		t.Errorf("shards = %d, want 1", shards)
	}
	var shardStats []json.RawMessage
	if err := json.Unmarshal(vars["shard_stats"], &shardStats); err != nil || len(shardStats) != 1 {
		t.Errorf("shard_stats = %s (err %v), want one entry", vars["shard_stats"], err)
	}
}

// TestDebugTraceEndpoint drives the /debug/trace surface: mode switching,
// manual dumps, the JSON export, and reset.
func TestDebugTraceEndpoint(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()
	ts := httptest.NewServer(NewDebugHandler(c))
	defer ts.Close()

	getExport := func() txtrace.Export {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/trace")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ex txtrace.Export
		if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
			t.Fatalf("/debug/trace not an export document: %v", err)
		}
		return ex
	}
	post := func(query string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/debug/trace?"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /debug/trace?%s = %d", query, resp.StatusCode)
		}
	}

	if ex := getExport(); ex.Mode != "off" {
		t.Fatalf("initial mode %q, want off", ex.Mode)
	}
	post("mode=full")
	if ex := getExport(); ex.Mode != "full" {
		t.Fatalf("mode after POST = %q, want full", ex.Mode)
	}

	post("dump=1")
	if ex := getExport(); len(ex.Dumps) != 1 || ex.Dumps[0].Reason == "" {
		t.Fatalf("dumps after POST dump=1: %+v", ex.Dumps)
	}

	post("reset=1")
	if ex := getExport(); len(ex.Dumps) != 0 {
		t.Fatalf("dumps survived reset: %+v", ex.Dumps)
	}

	// Bad mode is a 400, not a silent no-op.
	resp, err := http.Post(ts.URL+"/debug/trace?mode=loud", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST bad mode = %d, want 400", resp.StatusCode)
	}
}

// TestServerBindsSpans checks the front end wires a span buffer into every
// connection: with full tracing on, a request over a real socket produces a
// kept span attributed to a server-assigned connection id.
func TestServerBindsSpans(t *testing.T) {
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8})
	c.Start()
	defer c.Stop()
	c.EnableTxTrace(txtrace.ModeFull)

	srv, err := Listen(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("set foo 0 0 3\r\nbar\r\nget foo\r\nquit\r\n")); err != nil {
		t.Fatal(err)
	}
	io.ReadAll(conn) // drain until the server closes after quit

	recent := c.Tracer().Recent()
	if len(recent) == 0 {
		t.Fatal("no spans kept for a full-traced socket connection")
	}
	for _, sp := range recent {
		if sp.Conn == 0 {
			t.Errorf("span %d has no connection id", sp.ID)
		}
	}
}
