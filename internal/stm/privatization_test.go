package stm

import (
	"sync"
	"testing"
)

// TestPrivatizationSafety pins the guarantee §3.1/Figure 1a of the paper
// depends on ("the default TM algorithm in GCC is privatization safe, and
// this level of safety is a requirement of the Draft C++ TM Specification"):
//
// One thread privatizes a buffer by acquiring a transactional lock flag in a
// mini-transaction, then reads the buffer NONtransactionally. Another thread
// runs large transactions that check the flag and, if free, write the buffer
// in place (eager MLWT). Without commit-time quiescence the reader can
// observe the doomed writer's speculative stores or its rollback; with it,
// the privatized reads are always consistent.
func TestPrivatizationSafety(t *testing.T) {
	for _, alg := range []Algorithm{MLWT, LazyAlg, NOrec} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			rt := New(Config{Algorithm: alg})
			const n = 32
			flag := NewTWord(0)
			buf := make([]*TWord, n)
			for i := range buf {
				buf[i] = NewTWord(0)
			}

			var wg sync.WaitGroup
			stop := make(chan struct{})

			// Writer: big transactions that fill the buffer with a single
			// round number, but only while the flag is free (Figure 1b's
			// func1: inspect the lock, then use the data, in one tx).
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := rt.NewThread()
				round := uint64(1)
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
						if flag.Load(tx) != 0 {
							return // privatized: hands off
						}
						for _, w := range buf {
							w.Store(tx, round)
						}
					})
					round++
				}
			}()

			// Privatizer: trylock via mini-transaction, then read the buffer
			// directly (nontransactionally), then unlock via mini-transaction.
			th := rt.NewThread()
			for iter := 0; iter < 2000; iter++ {
				locked := false
				_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) {
					locked = false
					if flag.Load(tx) == 0 {
						flag.Store(tx, 1)
						locked = true
					}
				})
				if !locked {
					continue
				}
				first := buf[0].LoadDirect()
				for i, w := range buf {
					if got := w.LoadDirect(); got != first {
						t.Fatalf("iter %d: privatized read torn: buf[%d]=%d, buf[0]=%d",
							iter, i, got, first)
					}
				}
				_ = th.Run(Props{Kind: Atomic}, func(tx *Tx) { flag.Store(tx, 0) })
			}
			close(stop)
			wg.Wait()
		})
	}
}
