package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/poller"
	"repro/internal/protocol"
)

// TestEventLoopOverflowSpill exercises the enqueue spill path white-box: a
// loop with a one-slot shared queue and no workers must divert the excess to
// the overflow list, count each spill, and report the overflow length as a
// gauge that survives a counter reset.
func TestEventLoopOverflowSpill(t *testing.T) {
	ev := &evLoop{
		sharedQ: make(chan *evConn, 1),
		conns:   make(map[poller.Token]*evConn),
	}
	ev.stats.winStart.Store(time.Now().UnixNano())

	mkConn := func() *evConn {
		a, b := net.Pipe()
		t.Cleanup(func() { a.Close(); b.Close() })
		return &evConn{pc: protocol.NewConnPooled(a), fd: -1}
	}
	for i := 0; i < 3; i++ {
		ev.enqueue(mkConn())
	}

	if got := ev.stats.spills.Load(); got != 2 {
		t.Fatalf("spills = %d, want 2 (one slot in sharedQ, three enqueues)", got)
	}
	s := ev.EventLoopSnapshot()
	if s.OverflowSpills != 2 || s.OverflowLen != 2 || s.SharedDepth != 1 {
		t.Fatalf("snapshot spills=%d overflow=%d shared=%d, want 2/2/1",
			s.OverflowSpills, s.OverflowLen, s.SharedDepth)
	}

	// Reset clears the counter; the overflow gauge still shows the queued
	// work, and draining it does not resurrect the counter.
	ev.ResetTransportCounters()
	s = ev.EventLoopSnapshot()
	if s.OverflowSpills != 0 || s.OverflowLen != 2 {
		t.Fatalf("after reset: spills=%d overflow=%d, want 0/2", s.OverflowSpills, s.OverflowLen)
	}
	if ev.popOverflow() == nil || ev.popOverflow() == nil || ev.popOverflow() != nil {
		t.Fatal("overflow should drain exactly two connections in FIFO order")
	}
	if got := ev.EventLoopSnapshot().OverflowLen; got != 0 {
		t.Fatalf("overflow gauge after drain = %d, want 0", got)
	}
}

// startFPServer boots a 4-shard fingerprinting cache on the event-loop
// transport and returns the server plus its cache.
func startFPServer(t *testing.T) (*Server, *engine.Cache) {
	t.Helper()
	c := engine.New(engine.Config{Branch: engine.ITOnCommit, HashPower: 8, Shards: 4})
	c.Start()
	c.EnableFingerprint()
	s, err := ListenConfig(c, Config{Addr: "127.0.0.1:0", EventLoop: true})
	if err != nil {
		c.Stop()
		t.Fatalf("ListenConfig: %v", err)
	}
	t.Cleanup(func() {
		s.Close()
		c.Stop()
	})
	return s, c
}

// statsMap runs one "stats <sub>" query over conn and returns the STAT
// key→value map.
func statsMap(t *testing.T, conn net.Conn, r *bufio.Reader, sub string) map[string]string {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "stats %s\r\n", sub); err != nil {
		t.Fatalf("write stats %s: %v", sub, err)
	}
	out := map[string]string{}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read stats %s: %v", sub, err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out
		}
		if rest, ok := strings.CutPrefix(line, "STAT "); ok {
			if k, v, ok := strings.Cut(rest, " "); ok {
				out[k] = v
			}
		}
	}
}

func sumShardStat(m map[string]string, field string) uint64 {
	var total uint64
	for k, v := range m {
		if strings.HasPrefix(k, "shard_") && strings.HasSuffix(k, "_"+field) {
			n, _ := strconv.ParseUint(v, 10, 64)
			total += n
		}
	}
	return total
}

// TestStatsFingerprintAndEventloopOverWire drives traffic through the
// event-loop transport and checks both new stats surfaces report it.
func TestStatsFingerprintAndEventloopOverWire(t *testing.T) {
	s, _ := startFPServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	fmt.Fprintf(conn, "set fphot 0 0 3\r\nabc\r\n")
	if line, _ := r.ReadString('\n'); !strings.HasPrefix(line, "STORED") {
		t.Fatalf("set reply %q", line)
	}
	for i := 0; i < 40; i++ {
		fmt.Fprintf(conn, "get fphot\r\n")
		for j := 0; j < 3; j++ { // VALUE, payload, END
			if _, err := r.ReadString('\n'); err != nil {
				t.Fatal(err)
			}
		}
	}

	fp := statsMap(t, conn, r, "fingerprint")
	if fp["fingerprint"] != "1" {
		t.Fatalf("fingerprint flag = %q, want 1", fp["fingerprint"])
	}
	if fp["shards"] != "4" {
		t.Fatalf("shards = %q, want 4", fp["shards"])
	}
	if ops := sumShardStat(fp, "ops"); ops < 41 {
		t.Fatalf("summed shard ops = %d, want >= 41", ops)
	}
	hot := false
	for k, v := range fp {
		if strings.Contains(k, "_hot_") && strings.HasSuffix(v, " fphot") {
			hot = true
		}
	}
	if !hot {
		t.Fatalf("hot key fphot missing from stats fingerprint: %v", fp)
	}

	el := statsMap(t, conn, r, "eventloop")
	if el["eventloop"] != "1" {
		t.Fatalf("eventloop flag = %q, want 1", el["eventloop"])
	}
	if w, _ := strconv.Atoi(el["workers"]); w <= 0 {
		t.Fatalf("workers = %q, want > 0", el["workers"])
	}
	if c, _ := strconv.Atoi(el["conns"]); c < 1 {
		t.Fatalf("conns = %q, want >= 1 (this connection)", el["conns"])
	}
	if wk, _ := strconv.ParseUint(el["poller_wakeups"], 10, 64); wk == 0 {
		t.Fatal("poller_wakeups = 0 after live traffic")
	}
	if !strings.Contains(el["burst_ops"], "count=") {
		t.Fatalf("burst_ops line = %q, want histogram summary", el["burst_ops"])
	}
	if spills, ok := el["event_overflow_spills"]; !ok {
		t.Fatal("event_overflow_spills missing from stats eventloop")
	} else if _, err := strconv.ParseUint(spills, 10, 64); err != nil {
		t.Fatalf("event_overflow_spills = %q, not a counter", spills)
	}
}

// TestStatsResetRacedOverWire is the protocol-level exactly-once check:
// concurrent `stats reset` commands racing live traffic must leave every new
// counter coherent (no underflow blow-ups), keep fingerprinting enabled, and
// preserve gauges (workers, conns).
func TestStatsResetRacedOverWire(t *testing.T) {
	s, c := startFPServer(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // traffic the resets race against
		defer wg.Done()
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fmt.Fprintf(conn, "set rr-%d 0 0 1\r\nx\r\n", i%32)
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
		}
	}()

	var resetters sync.WaitGroup
	for i := 0; i < 4; i++ {
		resetters.Add(1)
		go func() {
			defer resetters.Done()
			conn, err := net.Dial("tcp", s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for j := 0; j < 15; j++ {
				fmt.Fprintf(conn, "stats reset\r\n")
				if line, err := r.ReadString('\n'); err != nil || !strings.HasPrefix(line, "RESET") {
					t.Errorf("stats reset reply %q err %v", line, err)
					return
				}
			}
		}()
	}
	resetters.Wait()
	close(stop)
	wg.Wait()

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	if !c.FingerprintEnabled() {
		t.Fatal("raced resets turned fingerprinting off")
	}
	fp := statsMap(t, conn, r, "fingerprint")
	if fp["fingerprint"] != "1" {
		t.Fatalf("fingerprint flag after resets = %q", fp["fingerprint"])
	}
	if ops := sumShardStat(fp, "ops"); ops > 1<<40 {
		t.Fatalf("shard ops implausible after raced resets: %d", ops)
	}
	el := statsMap(t, conn, r, "eventloop")
	for _, k := range []string{"event_overflow_spills", "poller_wakeups", "poller_probes"} {
		n, err := strconv.ParseUint(el[k], 10, 64)
		if err != nil || n > 1<<40 {
			t.Fatalf("%s = %q after raced resets", k, el[k])
		}
	}
	if w, _ := strconv.Atoi(el["workers"]); w <= 0 {
		t.Fatalf("workers gauge lost after resets: %q", el["workers"])
	}
	if cn, _ := strconv.Atoi(el["conns"]); cn < 1 {
		t.Fatalf("conns gauge lost after resets: %q", el["conns"])
	}
}
