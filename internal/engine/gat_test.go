package engine

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetAndTouchExtends(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		now := c.Now()
		w.Set([]byte("g"), 9, now+5, []byte("val"))
		val, flags, cas, ok := w.GetAndTouch([]byte("g"), now+100)
		if !ok || string(val) != "val" || flags != 9 || cas == 0 {
			t.Fatalf("GetAndTouch = (%q,%d,%d,%v)", val, flags, cas, ok)
		}
		c.SetTime(now + 50)
		if _, _, _, ok := w.Get([]byte("g")); !ok {
			t.Error("item expired despite gat extension")
		}
		if _, _, _, ok := w.GetAndTouch([]byte("missing"), now+100); ok {
			t.Error("gat hit on absent key")
		}
	})
}

func TestGetAndTouchCanShorten(t *testing.T) {
	c := newTestCache(t, ITOnCommit)
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	now := c.Now()
	w.Set([]byte("s"), 0, 0, []byte("forever")) // no expiry
	if _, _, _, ok := w.GetAndTouch([]byte("s"), now+1); !ok {
		t.Fatal("gat missed")
	}
	c.SetTime(now + 5)
	if _, _, _, ok := w.Get([]byte("s")); ok {
		t.Error("gat-shortened expiry not applied")
	}
}

// TestWorkersShareCASStream: CAS ids are globally unique and increasing per
// key update across workers.
func TestWorkersShareCASStream(t *testing.T) {
	c := newTestCache(t, IPOnCommit)
	c.Start()
	defer c.Stop()
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := c.NewWorker()
			for i := 0; i < 100; i++ {
				key := []byte(fmt.Sprintf("cas-%d-%d", g, i))
				w.Set(key, 0, 0, []byte("v"))
				_, _, cas, ok := w.Get(key)
				if !ok || cas == 0 {
					t.Errorf("get after set failed for %s", key)
					return
				}
				mu.Lock()
				if seen[cas] {
					t.Errorf("duplicate CAS id %d", cas)
				}
				seen[cas] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// TestTooLargeObject: an object bigger than the largest slab class must be
// rejected with TooLarge and leave no residue.
func TestTooLargeObject(t *testing.T) {
	c := newTestCache(t, Semaphore)
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	huge := make([]byte, 1<<20) // larger than the max chunk (PageSize/2)
	if res := w.Set([]byte("huge"), 0, 0, huge); res != TooLarge {
		t.Fatalf("Set huge = %v", res)
	}
	if _, _, _, ok := w.Get([]byte("huge")); ok {
		t.Error("huge object stored despite rejection")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("validation after rejection: %v", err)
	}
}

// TestZeroLengthValue round-trips an empty value.
func TestZeroLengthValue(t *testing.T) {
	forEachBranch(t, func(t *testing.T, c *Cache) {
		w := c.NewWorker()
		if res := w.Set([]byte("empty"), 3, 0, nil); res != Stored {
			t.Fatalf("Set empty = %v", res)
		}
		val, flags, _, ok := w.Get([]byte("empty"))
		if !ok || len(val) != 0 || flags != 3 {
			t.Errorf("Get empty = (%q,%d,%v)", val, flags, ok)
		}
	})
}

// TestLongKey: the engine handles long keys (the 250-byte protocol limit is
// enforced at the protocol layer; the engine itself must not care).
func TestLongKey(t *testing.T) {
	c := newTestCache(t, ITLib)
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	key := make([]byte, 400)
	for i := range key {
		key[i] = byte('a' + i%26)
	}
	if res := w.Set(key, 0, 0, []byte("v")); res != Stored {
		t.Fatalf("Set long key = %v", res)
	}
	if val, _, _, ok := w.Get(key); !ok || string(val) != "v" {
		t.Errorf("Get long key = (%q,%v)", val, ok)
	}
}

func TestWorkerMiscAccessors(t *testing.T) {
	c := newTestCache(t, ITOnCommit)
	c.Start()
	defer c.Stop()
	if c.Branch() != ITOnCommit {
		t.Error("Branch accessor")
	}
	w := c.NewWorker()
	if w.CacheNow() == 0 {
		t.Error("CacheNow returned 0")
	}
	for r, want := range map[StoreResult]string{
		Stored: "STORED", NotStored: "NOT_STORED", Exists: "EXISTS",
		NotFound: "NOT_FOUND",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
	if StoreResult(99).String() == "STORED" {
		t.Error("unknown result mapped")
	}
}

func TestResetStatsAndSlabStats(t *testing.T) {
	for _, b := range []Branch{Baseline, ITOnCommit} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			c := newTestCache(t, b)
			c.Start()
			defer c.Stop()
			w := c.NewWorker()
			w.Set([]byte("k"), 0, 0, []byte("v"))
			w.Get([]byte("k"))
			ss := w.SlabStats()
			if len(ss) == 0 || ss[0].UsedChunks != 1 || ss[0].ChunkSize <= 0 {
				t.Errorf("SlabStats = %+v", ss)
			}
			w.ResetStats()
			s := w.Stats()
			if s.GetCmds != 0 || s.SetCmds != 0 {
				t.Errorf("counters survived reset: %+v", s.Aggregated)
			}
			if s.CurrItems != 1 {
				t.Errorf("gauge reset: curr_items = %d", s.CurrItems)
			}
		})
	}
}

// TestEvictionSkipsPinnedTail: a referenced LRU tail must be skipped (the
// save-for-later walk), with the next victim taken instead.
func TestEvictionSkipsPinnedTail(t *testing.T) {
	c := New(Config{Branch: Semaphore, MemLimit: 1 << 20, HashPower: 8})
	c.Start()
	defer c.Stop()
	w := c.NewWorker()
	big := make([]byte, 64*1024) // ~15 chunks per 1MiB page
	var stored []string
	for i := 0; ; i++ {
		key := fmt.Sprintf("pin-%03d", i)
		if w.Set([]byte(key), 0, 0, big) != Stored {
			t.Fatalf("prefill set %d failed", i)
		}
		stored = append(stored, key)
		if w.Stats().Evictions > 0 {
			break // memory is now full and cycling
		}
		if i > 100 {
			t.Fatal("never reached eviction")
		}
	}
	// The LRU tail is stored[oldest surviving]; sets continue and must evict
	// in LRU order while the engine remains structurally sound.
	for i := 0; i < 5; i++ {
		if w.Set([]byte(fmt.Sprintf("pin-x-%d", i)), 0, 0, big) != Stored {
			t.Fatalf("pressure set %d failed", i)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := w.Get([]byte(stored[len(stored)-1])); !ok {
		t.Error("most recent prefill key evicted before older ones")
	}
}
