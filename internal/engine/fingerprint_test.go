package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestFingerprintRecordsEngineOps drives a skewed workload through a worker
// and checks the observer sees it: per-shard op mix, hit/miss split, value
// sizes, and the hot key surfacing in the right shard's sketch with a
// meaningful concentration estimate.
func TestFingerprintRecordsEngineOps(t *testing.T) {
	c, w := newWireTxCache(t, ITOnCommit, 4)
	if c.Fingerprint() != nil {
		t.Fatal("observer exists before EnableFingerprint")
	}
	if w.FingerprintEnabled() {
		t.Fatal("FingerprintEnabled true before enable")
	}
	o := c.EnableFingerprint()
	if o == nil || c.Fingerprint() != o || !w.FingerprintEnabled() {
		t.Fatal("enable did not install the observer")
	}
	if again := c.EnableFingerprint(); again != o {
		t.Fatal("second EnableFingerprint returned a different observer")
	}

	hot := []byte("blistering")
	w.Set(hot, 0, 0, make([]byte, 100))
	for i := 0; i < 200; i++ {
		w.Get(hot)
	}
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("cold-%d", i))
		w.Set(k, 0, 0, []byte("xx"))
		w.Get(k)
		w.Get([]byte(fmt.Sprintf("absent-%d", i)))
	}
	w.Delete([]byte("cold-0"))
	w.Incr([]byte("not-numeric-or-present"), 1)
	w.Touch(hot, 60)

	snap := o.Snapshot()
	if len(snap.Shards) != 4 {
		t.Fatalf("snapshot shards = %d, want 4", len(snap.Shards))
	}
	var total ShardSnapshotTotals
	hotShard := -1
	for i, s := range snap.Shards {
		total.Ops += s.Ops
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.Deletes += s.Deletes
		total.Misses += s.Misses
		for _, hk := range s.HotKeys {
			if hk.Key == string(hot) {
				hotShard = i
				if hk.Count < 100 {
					t.Errorf("hot key count = %d, want >= 100", hk.Count)
				}
			}
		}
	}
	if total.Reads < 200 || total.Writes < 21 || total.Deletes != 1 || total.Misses < 20 {
		t.Fatalf("op mix not recorded: %+v", total)
	}
	if hotShard < 0 {
		t.Fatal("hot key absent from every shard sketch")
	}
	hs := snap.Shards[hotShard]
	if hs.Concentration <= 0 || hs.Concentration > 1 {
		t.Fatalf("hot shard concentration = %v, want (0, 1]", hs.Concentration)
	}
	if got := o.Concentration(hotShard); got != hs.Concentration {
		t.Fatalf("Concentration(%d) = %v, snapshot says %v", hotShard, got, hs.Concentration)
	}
	if hs.VSize.Count == 0 || hs.VSize.Max < 100 {
		t.Fatalf("value-size histogram empty or missed the 100-byte value: %+v", hs.VSize)
	}

	// Disable flips op paths back to the nil load; collected windows stay.
	c.DisableFingerprint()
	if w.FingerprintEnabled() {
		t.Fatal("FingerprintEnabled true after disable")
	}
	before := o.Snapshot().Shards[hotShard].Ops
	for i := 0; i < 50; i++ {
		w.Get(hot)
	}
	if after := o.Snapshot().Shards[hotShard].Ops; after != before {
		t.Fatalf("ops recorded while disabled: %d -> %d", before, after)
	}
	if c.Fingerprint() != o {
		t.Fatal("disable dropped the observer; windows must stay queryable")
	}
}

// ShardSnapshotTotals accumulates per-shard counters in tests.
type ShardSnapshotTotals struct {
	Ops, Reads, Writes, Deletes, Misses uint64
}

// TestFingerprintTxnPhases checks CommitTx feeds the cache-global phase
// histograms: validate and apply on every commit, serial wait only when the
// commit spans shards and must order behind the cross-shard token.
func TestFingerprintTxnPhases(t *testing.T) {
	c, w := newWireTxCache(t, ITOnCommit, 2)
	o := c.EnableFingerprint()

	keys := keysOnShards(t, 2, 2)
	out := w.CommitTx(nil, []TxOp{
		{Kind: TxSet, Key: keys[0], Value: []byte("a")},
	})
	if !out.Committed {
		t.Fatalf("single-shard commit: %+v", out)
	}
	s := o.Snapshot()
	if s.TxnValidate.Count == 0 || s.TxnApply.Count == 0 {
		t.Fatalf("validate/apply histograms empty after commit: %+v", s)
	}
	base := s.TxnSerialWait.Count

	out = w.CommitTx(nil, []TxOp{
		{Kind: TxSet, Key: keys[0], Value: []byte("b")},
		{Kind: TxSet, Key: keys[1], Value: []byte("c")},
	})
	if !out.Committed {
		t.Fatalf("cross-shard commit: %+v", out)
	}
	if got := o.Snapshot().TxnSerialWait.Count; got <= base {
		t.Fatalf("cross-shard commit did not record serial wait: %d -> %d", base, got)
	}

	// While disabled, commits must not touch the phase histograms.
	c.DisableFingerprint()
	v := o.Snapshot().TxnValidate.Count
	if out = w.CommitTx(nil, []TxOp{{Kind: TxSet, Key: keys[0], Value: []byte("d")}}); !out.Committed {
		t.Fatalf("commit while disabled: %+v", out)
	}
	if got := o.Snapshot().TxnValidate.Count; got != v {
		t.Fatalf("phase histogram advanced while disabled: %d -> %d", v, got)
	}
}

// TestFingerprintResetExactlyOnce covers the `stats reset` contract: the
// cache-global observer clears once per Worker.ResetStats even when resets
// race each other and live traffic — counters may keep moving, but nothing
// underflows and enabled-state survives.
func TestFingerprintResetExactlyOnce(t *testing.T) {
	c, w := newWireTxCache(t, ITOnCommit, 2)
	o := c.EnableFingerprint()

	w.Set([]byte("seed"), 0, 0, []byte("v"))
	for i := 0; i < 50; i++ {
		w.Get([]byte("seed"))
	}
	if o.Snapshot().Shards[w.ShardOf([]byte("seed"))].Ops == 0 {
		t.Fatal("no ops before reset")
	}

	var traffic, resets sync.WaitGroup
	stop := make(chan struct{})
	traffic.Add(1)
	go func() { // live traffic racing the resets
		defer traffic.Done()
		tw := c.NewWorker()
		for {
			select {
			case <-stop:
				return
			default:
				tw.Get([]byte("seed"))
			}
		}
	}()
	for i := 0; i < 4; i++ {
		resets.Add(1)
		go func() {
			defer resets.Done()
			rw := c.NewWorker()
			for j := 0; j < 20; j++ {
				rw.ResetStats()
			}
		}()
	}
	resets.Wait()
	close(stop)
	traffic.Wait()

	if !w.FingerprintEnabled() {
		t.Fatal("reset turned fingerprinting off")
	}
	w.ResetStats()
	// After a quiescent reset the windows are near-empty; anything recorded
	// since is small and non-negative by construction (counters are uint64
	// adds, so the real hazard — double-subtraction — shows up as huge
	// values).
	for i, s := range o.Snapshot().Shards {
		if s.Ops > 1<<40 {
			t.Fatalf("shard %d ops implausible after raced resets: %d", i, s.Ops)
		}
	}
}
