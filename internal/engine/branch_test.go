package engine

import "testing"

// TestBranchLadderMonotonicity: each stage of the transactionalization
// ladder only makes MORE operations safe — TxVolatiles at Max, plus SafeLibc
// at Lib, plus OnCommitIO at onCommit. A regression here would silently
// reorder the paper's stages.
func TestBranchLadderMonotonicity(t *testing.T) {
	type stage struct {
		branches []Branch
		p        [3]bool // TxVolatiles, SafeLibc, OnCommitIO
	}
	stages := []stage{
		{[]Branch{IP, IT, IPCallable, ITCallable}, [3]bool{false, false, false}},
		{[]Branch{IPMax, ITMax}, [3]bool{true, false, false}},
		{[]Branch{IPLib, ITLib}, [3]bool{true, true, false}},
		{[]Branch{IPOnCommit, ITOnCommit, IPNoLock, ITNoLock}, [3]bool{true, true, true}},
	}
	for _, s := range stages {
		for _, b := range s.branches {
			cfg := configFor(b)
			if !cfg.tm {
				t.Errorf("%v: not transactional", b)
			}
			got := [3]bool{cfg.profile.TxVolatiles, cfg.profile.SafeLibc, cfg.profile.OnCommitIO}
			if got != s.p {
				t.Errorf("%v: profile %v, want %v", b, got, s.p)
			}
		}
	}
	for _, b := range []Branch{Baseline, Semaphore} {
		if configFor(b).tm {
			t.Errorf("%v: lock branch marked transactional", b)
		}
	}
	if !configFor(Baseline).condvars || configFor(Semaphore).condvars {
		t.Error("condvar flag wrong on Baseline/Semaphore")
	}
}

// TestBranchItemLockStrategy: IP branches keep item locks, IT branches
// dissolve them.
func TestBranchItemLockStrategy(t *testing.T) {
	ip := []Branch{IP, IPCallable, IPMax, IPLib, IPOnCommit, IPNoLock}
	it := []Branch{IT, ITCallable, ITMax, ITLib, ITOnCommit, ITNoLock}
	for _, b := range ip {
		if configFor(b).itemTx {
			t.Errorf("%v: itemTx set on an IP branch", b)
		}
	}
	for _, b := range it {
		if !configFor(b).itemTx {
			t.Errorf("%v: itemTx missing on an IT branch", b)
		}
	}
}

// TestBranchSTMDefaults: NoLock branches remove the serial lock and drop
// contention management, as §4 configures.
func TestBranchSTMDefaults(t *testing.T) {
	for _, b := range []Branch{IPNoLock, ITNoLock} {
		sc := stmConfigFor(configFor(b))
		if !sc.NoSerialLock {
			t.Errorf("%v: serial lock not removed", b)
		}
	}
	sc := stmConfigFor(configFor(IPOnCommit))
	if sc.NoSerialLock {
		t.Error("onCommit branch lost its serial lock")
	}
}

// TestBranchesListComplete: Branches() covers every branch exactly once, in
// ladder order (Baseline first, NoLock last).
func TestBranchesListComplete(t *testing.T) {
	bs := Branches()
	if len(bs) != 14 {
		t.Fatalf("Branches() = %d entries", len(bs))
	}
	seen := map[Branch]bool{}
	for _, b := range bs {
		if seen[b] {
			t.Errorf("duplicate branch %v", b)
		}
		seen[b] = true
		if b.String() == "" {
			t.Errorf("branch %d has no name", int(b))
		}
	}
	if bs[0] != Baseline || bs[len(bs)-1] != ITNoLock {
		t.Errorf("ladder order broken: %v ... %v", bs[0], bs[len(bs)-1])
	}
}

// TestStripeClamping: stripes never exceed buckets (a chain must be covered
// by one stripe).
func TestStripeClamping(t *testing.T) {
	c := Config{HashPower: 6, Stripes: 1024}.withDefaults()
	if c.Stripes > 1<<c.HashPower {
		t.Errorf("stripes %d > buckets %d", c.Stripes, 1<<c.HashPower)
	}
	c = Config{HashPower: 16}.withDefaults()
	if c.Stripes != 1024 {
		t.Errorf("default stripes = %d", c.Stripes)
	}
}
