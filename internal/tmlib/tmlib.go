// Package tmlib provides the transaction-safe standard-library replacements
// the paper develops in §3.4 ("Making Libraries Safe").
//
// Two techniques from the paper are reproduced:
//
//   - Safety via reimplementation: memcmp, memcpy, strlen, strncmp, strncpy,
//     strchr and realloc are re-implemented against transactional buffers
//     (stm.TBytes), with every load and store instrumented — and, as in the
//     paper, the nontransactional clones (the *Direct variants) are generated
//     from the same naive source, so the nontransactional path also loses the
//     optimized libc implementation.
//
//   - Safety via marshaling (Figure 7): data is copied from shared memory
//     onto the "stack" (a thread-local []byte), an unsafe library function
//     wrapped as [[transaction_pure]] is invoked on the private copy, and any
//     output is marshaled back. isspace, strtol, strtoull, atoi and snprintf
//     (cloned per argument combination, since variable arguments are not
//     transaction-safe) are made safe this way. htons needs no marshaling.
//
// All functions taking a *stm.Tx are transaction_safe: they perform no unsafe
// operations and may be called from atomic transactions.
package tmlib

import (
	"errors"
	"fmt"

	"repro/internal/stm"
)

// ---------------------------------------------------------------------------
// Safety via reimplementation

// Memcmp compares n bytes of a (from ao) and b (from bo) transactionally,
// returning -1, 0 or 1 with memcmp semantics.
func Memcmp(tx *stm.Tx, a *stm.TBytes, ao int, b *stm.TBytes, bo, n int) int {
	for i := 0; i < n; i++ {
		ca, cb := a.ByteAt(tx, ao+i), b.ByteAt(tx, bo+i)
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
	}
	return 0
}

// MemcmpLocal compares n bytes of shared (from off) with the thread-local
// buffer local, reading the shared side transactionally. Like the GCC
// instrumentation it replaces, the barriers are word-granular: one
// transactional load covers eight bytes.
func MemcmpLocal(tx *stm.Tx, shared *stm.TBytes, off int, local []byte) int {
	if off%8 == 0 {
		i := 0
		for ; i+8 <= len(local); i += 8 {
			w := shared.LoadWord(tx, off/8+i/8)
			for b := 0; b < 8; b++ {
				cs := byte(w >> (8 * b))
				if cs != local[i+b] {
					if cs < local[i+b] {
						return -1
					}
					return 1
				}
			}
		}
		local = local[i:]
		off += i
	}
	for i := range local {
		cs := shared.ByteAt(tx, off+i)
		if cs != local[i] {
			if cs < local[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Memcpy copies n bytes from src (at so) to dst (at do_), both transactional.
func Memcpy(tx *stm.Tx, dst *stm.TBytes, do_ int, src *stm.TBytes, so, n int) {
	for i := 0; i < n; i++ {
		dst.SetByteAt(tx, do_+i, src.ByteAt(tx, so+i))
	}
}

// MemcpyFromLocal copies a thread-local buffer into shared memory with
// word-granular barriers.
func MemcpyFromLocal(tx *stm.Tx, dst *stm.TBytes, off int, src []byte) {
	i := 0
	if off%8 == 0 {
		for ; i+8 <= len(src); i += 8 {
			var w uint64
			for b := 0; b < 8; b++ {
				w |= uint64(src[i+b]) << (8 * b)
			}
			dst.StoreWord(tx, off/8+i/8, w)
		}
	}
	for ; i < len(src); i++ {
		dst.SetByteAt(tx, off+i, src[i])
	}
}

// MemcpyToLocal copies n shared bytes (from off) into a thread-local buffer
// with word-granular barriers.
func MemcpyToLocal(tx *stm.Tx, dst []byte, src *stm.TBytes, off, n int) {
	i := 0
	if off%8 == 0 {
		for ; i+8 <= n; i += 8 {
			w := src.LoadWord(tx, off/8+i/8)
			for b := 0; b < 8; b++ {
				dst[i+b] = byte(w >> (8 * b))
			}
		}
	}
	for ; i < n; i++ {
		dst[i] = src.ByteAt(tx, off+i)
	}
}

// Strlen returns the length of the NUL-terminated string in s, or s.Len() if
// no NUL is present.
func Strlen(tx *stm.Tx, s *stm.TBytes) int {
	for i := 0; i < s.Len(); i++ {
		if s.ByteAt(tx, i) == 0 {
			return i
		}
	}
	return s.Len()
}

// Strncmp compares at most n bytes of two NUL-terminated strings.
func Strncmp(tx *stm.Tx, a, b *stm.TBytes, n int) int {
	for i := 0; i < n; i++ {
		var ca, cb byte
		if i < a.Len() {
			ca = a.ByteAt(tx, i)
		}
		if i < b.Len() {
			cb = b.ByteAt(tx, i)
		}
		switch {
		case ca != cb:
			if ca < cb {
				return -1
			}
			return 1
		case ca == 0:
			return 0
		}
	}
	return 0
}

// Strncpy copies at most n bytes of the NUL-terminated string src into dst,
// NUL-padding like the libc function.
func Strncpy(tx *stm.Tx, dst, src *stm.TBytes, n int) {
	padding := false
	for i := 0; i < n; i++ {
		var c byte
		if !padding && i < src.Len() {
			c = src.ByteAt(tx, i)
		}
		if c == 0 {
			padding = true
		}
		dst.SetByteAt(tx, i, c)
	}
}

// Strchr returns the index of the first occurrence of c in the
// NUL-terminated string s, or -1.
func Strchr(tx *stm.Tx, s *stm.TBytes, c byte) int {
	for i := 0; i < s.Len(); i++ {
		b := s.ByteAt(tx, i)
		if b == c {
			return i
		}
		if b == 0 {
			break
		}
	}
	if c == 0 {
		return Strlen(tx, s)
	}
	return -1
}

// Realloc allocates a fresh transactional buffer of n bytes and copies
// min(n, old.Len()) bytes from old — the naive always-copy reimplementation
// from §3.4. The new buffer is captured memory: GCC would not instrument the
// stores into it, and neither do we.
func Realloc(tx *stm.Tx, old *stm.TBytes, n int) *stm.TBytes {
	fresh := stm.NewTBytes(n)
	m := old.Len()
	if n < m {
		m = n
	}
	buf := make([]byte, m)
	MemcpyToLocal(tx, buf, old, 0, m)
	fresh.WriteAllDirect(buf) // captured: not yet visible to any other thread
	return fresh
}

// ---------------------------------------------------------------------------
// Direct (nontransactional) clones.
//
// The specification requires both clones to come from the same source, so the
// nontransactional path cannot use the optimized libc either (§3.4 calls out
// this cost). These run the same naive loops on direct accessors.

// MemcmpDirect is the nontransactional clone of MemcmpLocal.
func MemcmpDirect(shared *stm.TBytes, off int, local []byte) int {
	buf := make([]byte, shared.Len())
	shared.ReadAllDirect(buf)
	for i := range local {
		cs := buf[off+i]
		if cs != local[i] {
			if cs < local[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// StrlenDirect is the nontransactional clone of Strlen.
func StrlenDirect(s *stm.TBytes) int {
	buf := make([]byte, s.Len())
	s.ReadAllDirect(buf)
	for i, b := range buf {
		if b == 0 {
			return i
		}
	}
	return s.Len()
}

// ---------------------------------------------------------------------------
// Safety via marshaling (Figure 7)

// ErrMarshalBounds is the panic value for a marshal that would read or write
// outside its shared buffer. The panic unwinds through the transaction
// machinery with abort semantics — every transactional effect of the attempt
// is rolled back before it propagates to the Run caller — so an out-of-bounds
// marshal can never leave shared memory partially written. Recover it with
// errors.Is(r.(error), ErrMarshalBounds).
//
// Historically MarshalIn/MarshalOut deferred to the memcpy layer, whose
// raw slice panics fired mid-copy with half the bytes already in the redo or
// undo log, and marshalTrunc's snprintf clones sliced with a negative length
// when the offset lay past the end of the destination. Bounds are now checked
// up front, before a single byte moves.
var ErrMarshalBounds = errors.New("tmlib: marshal out of bounds")

func marshalCheck(op string, bufLen, off, n int) {
	if off < 0 || n < 0 || off+n > bufLen {
		panic(fmt.Errorf("%w: %s [%d:%d) in %d-byte buffer", ErrMarshalBounds, op, off, off+n, bufLen))
	}
}

// MarshalIn copies n shared bytes starting at off into a fresh thread-local
// buffer ("marshal data onto the stack"). The reads are instrumented; the
// destination is private, so its writes are not — the property that makes the
// pattern safe under GCC's write-through TM, and dangerous under buffered-
// update STMs (§3.4). Out-of-range [off, off+n) panics with ErrMarshalBounds.
func MarshalIn(tx *stm.Tx, s *stm.TBytes, off, n int) []byte {
	marshalCheck("MarshalIn", s.Len(), off, n)
	buf := make([]byte, n)
	MemcpyToLocal(tx, buf, s, off, n)
	return buf
}

// MarshalOut copies a private buffer back into shared memory. An overflowing
// write panics with ErrMarshalBounds before any byte is stored.
func MarshalOut(tx *stm.Tx, d *stm.TBytes, off int, data []byte) {
	marshalCheck("MarshalOut", d.Len(), off, len(data))
	MemcpyFromLocal(tx, d, off, data)
}

// Cursor is a bounds-checked position in a shared buffer for sequential
// marshaling — the documented home of the marshal bounds rules. Reads and
// writes advance the cursor; Full variants treat overflow as a programming
// error (panic ErrMarshalBounds, abort semantics), Trunc follows snprintf and
// silently clips to the space remaining. A Cursor is cheap to create inside
// the transaction body; like any position derived from transactional reads it
// must not outlive the attempt that produced it.
type Cursor struct {
	tx  *stm.Tx
	buf *stm.TBytes
	off int
}

// NewCursor positions a cursor at off in buf. A cursor may start anywhere in
// [0, Len] — at Len it has zero bytes remaining; outside that range it panics
// with ErrMarshalBounds.
func NewCursor(tx *stm.Tx, buf *stm.TBytes, off int) *Cursor {
	marshalCheck("NewCursor", buf.Len(), off, 0)
	return &Cursor{tx: tx, buf: buf, off: off}
}

// Off returns the current offset.
func (c *Cursor) Off() int { return c.off }

// Remaining returns the bytes left between the cursor and the end of the
// buffer.
func (c *Cursor) Remaining() int { return c.buf.Len() - c.off }

// ReadFull marshals exactly n shared bytes into a fresh private buffer and
// advances. Panics with ErrMarshalBounds if fewer than n bytes remain.
func (c *Cursor) ReadFull(n int) []byte {
	marshalCheck("Cursor.ReadFull", c.buf.Len(), c.off, n)
	out := MarshalIn(c.tx, c.buf, c.off, n)
	c.off += n
	return out
}

// WriteFull marshals all of data into the buffer and advances. Panics with
// ErrMarshalBounds if data does not fit.
func (c *Cursor) WriteFull(data []byte) {
	marshalCheck("Cursor.WriteFull", c.buf.Len(), c.off, len(data))
	MarshalOut(c.tx, c.buf, c.off, data)
	c.off += len(data)
}

// WriteTrunc marshals as much of data as fits — snprintf truncation — and
// returns the number of bytes written. At the end of the buffer it writes
// nothing and returns 0.
func (c *Cursor) WriteTrunc(data []byte) int {
	n := len(data)
	if rem := c.Remaining(); n > rem {
		n = rem
	}
	if n > 0 {
		MarshalOut(c.tx, c.buf, c.off, data[:n])
		c.off += n
	}
	return n
}

// PureIsspace is the [[transaction_pure]] wrapper around isspace: it touches
// only its scalar argument.
func PureIsspace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// PureStrtol parses a signed decimal integer from a private buffer, returning
// the value and the number of bytes consumed (0 if none).
func PureStrtol(b []byte) (v int64, n int) {
	i := 0
	for i < len(b) && PureIsspace(b[i]) {
		i++
	}
	neg := false
	if i < len(b) && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	start := i
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		v = v*10 + int64(b[i]-'0')
		i++
	}
	if i == start {
		return 0, 0
	}
	if neg {
		v = -v
	}
	return v, i
}

// PureStrtoull parses an unsigned decimal integer from a private buffer.
func PureStrtoull(b []byte) (v uint64, n int) {
	i := 0
	for i < len(b) && PureIsspace(b[i]) {
		i++
	}
	start := i
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		v = v*10 + uint64(b[i]-'0')
		i++
	}
	return v, i - start
}

// PureAtoi is atoi on a private buffer.
func PureAtoi(b []byte) int64 {
	v, _ := PureStrtol(b)
	return v
}

// Htons swaps a 16-bit value to network byte order. Input and output are both
// scalars, so no marshaling is needed (§3.4).
func Htons(v uint16) uint16 { return v<<8 | v>>8 }

// Isspace reads one shared byte transactionally and classifies it via the
// pure wrapper — marshal in, pure call, scalar result.
func Isspace(tx *stm.Tx, s *stm.TBytes, i int) bool {
	return PureIsspace(s.ByteAt(tx, i))
}

// Strtoull marshals the shared string into private memory and parses it.
func Strtoull(tx *stm.Tx, s *stm.TBytes) (uint64, int) {
	return PureStrtoull(MarshalIn(tx, s, 0, Strlen(tx, s)))
}

// Atoi marshals the shared string into private memory and parses it.
func Atoi(tx *stm.Tx, s *stm.TBytes) int64 {
	return PureAtoi(MarshalIn(tx, s, 0, Strlen(tx, s)))
}

// ---------------------------------------------------------------------------
// snprintf clones.
//
// GCC does not support variable arguments in transaction-safe functions, so
// the paper manually cloned every va-arg function per argument combination
// that appeared in the program (§3.4). These are the clones the cache engine
// needs; each formats into a private buffer via a pure fmt call, then
// marshals the result into shared memory.

// SnprintfStatUint is the clone for snprintf(buf, n, "STAT %s %llu\r\n", k, v).
// It returns the number of bytes written (truncated to dst's capacity past
// off, like snprintf).
func SnprintfStatUint(tx *stm.Tx, dst *stm.TBytes, off int, key []byte, v uint64) int {
	out := fmt.Appendf(nil, "STAT %s %d\r\n", key, v)
	return marshalTrunc(tx, dst, off, out)
}

// SnprintfValueHeader is the clone for
// snprintf(buf, n, "VALUE %s %u %u\r\n", key, flags, bytes).
func SnprintfValueHeader(tx *stm.Tx, dst *stm.TBytes, off int, key []byte, flags uint32, n int) int {
	out := fmt.Appendf(nil, "VALUE %s %d %d\r\n", key, flags, n)
	return marshalTrunc(tx, dst, off, out)
}

// SnprintfUint is the clone for snprintf(buf, n, "%llu", v) (incr/decr
// responses).
func SnprintfUint(tx *stm.Tx, dst *stm.TBytes, off int, v uint64) int {
	out := fmt.Appendf(nil, "%d", v)
	return marshalTrunc(tx, dst, off, out)
}

func marshalTrunc(tx *stm.Tx, dst *stm.TBytes, off int, out []byte) int {
	return NewCursor(tx, dst, off).WriteTrunc(out)
}
