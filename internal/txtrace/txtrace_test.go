package txtrace

import (
	"testing"
	"time"

	"repro/internal/txobs"
)

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"off": ModeOff, "0": ModeOff, "false": ModeOff,
		"sampled": ModeSampled, "on": ModeSampled, "1": ModeSampled, "true": ModeSampled,
		"full": ModeFull, "2": ModeFull,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("loud"); err == nil {
		t.Error("ParseMode(loud) accepted")
	}
}

func TestSpanRingOverflow(t *testing.T) {
	r := NewSpanRing(8)
	for i := 1; i <= 20; i++ {
		r.Record(&Span{ID: uint64(i)})
	}
	if r.Len() != 8 || r.Recorded() != 20 || r.Dropped() != 12 {
		t.Fatalf("len=%d recorded=%d dropped=%d, want 8/20/12", r.Len(), r.Recorded(), r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap) != 8 || snap[0].ID != 13 || snap[7].ID != 20 {
		t.Fatalf("snapshot = %+v, want IDs 13..20", snap)
	}
	r.reset()
	if r.Len() != 0 || r.Dropped() != 0 || r.Recorded() != 0 {
		t.Fatalf("ring not empty after reset")
	}
}

// driveRequests pushes n plain (non-pathological) requests through a fresh
// ConnSpans on tr and returns the head-sampler keep pattern by request
// ordinal.
func driveRequests(tr *Tracer, n int) []bool {
	cs := NewConnSpans(tr, 1)
	kept := make([]bool, n)
	for i := 0; i < n; i++ {
		before := tr.Kept()
		if cs.Begin("get") {
			cs.End()
		}
		kept[i] = tr.Kept() > before
	}
	return kept
}

// TestHeadSamplingDeterminism is the satellite determinism check: the keep
// decision for the n-th request is a pure function of (seed, n), so two
// tracers configured identically keep exactly the same request population.
func TestHeadSamplingDeterminism(t *testing.T) {
	const n = 4096
	opt := Options{Seed: 0xDEADBEEF, SampleEvery: 64}
	a, b := New(opt), New(opt)
	a.SetMode(ModeSampled)
	b.SetMode(ModeSampled)

	ka, kb := driveRequests(a, n), driveRequests(b, n)
	var keptN int
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("request %d: tracer A kept=%v, tracer B kept=%v (same seed)", i, ka[i], kb[i])
		}
		if ka[i] {
			keptN++
		}
	}
	if keptN == 0 || keptN == n {
		t.Fatalf("kept %d of %d — sampler not sampling", keptN, n)
	}
	// The rate should be in the neighbourhood of 1/SampleEvery.
	if keptN < n/256 || keptN > n/16 {
		t.Errorf("kept %d of %d, want around %d", keptN, n, n/64)
	}

	// A different seed must (with overwhelming probability over 4096 coins)
	// pick a different population.
	c := New(Options{Seed: 0xBADC0FFEE, SampleEvery: 64})
	c.SetMode(ModeSampled)
	kc := driveRequests(c, n)
	same := true
	for i := range ka {
		if ka[i] != kc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds picked the identical sample population")
	}
}

// feedSpan runs one request through cs with the given events injected.
func feedSpan(cs *ConnSpans, cmd string, evs ...*txobs.Event) bool {
	if !cs.Begin(cmd) {
		return false
	}
	for _, ev := range evs {
		cs.TraceTx(ev)
	}
	cs.End()
	return true
}

// TestKeepRules checks the always-sample escape hatches: abort-retry chains
// ≥ K and serialization are kept regardless of the head coin, and full mode
// keeps plain requests too.
func TestKeepRules(t *testing.T) {
	// SampleEvery enormous: the head coin fires with probability 2^-30 per
	// request, so every keep below is attributable to its rule.
	tr := New(Options{Seed: 1, SampleEvery: 1 << 30, RetryK: 3})
	tr.SetMode(ModeSampled)
	cs := NewConnSpans(tr, 7)

	feedSpan(cs, "get",
		&txobs.Event{Kind: txobs.KBegin, Orec: -1},
		&txobs.Event{Kind: txobs.KCommit, Orec: -1})
	if tr.Kept() != 0 {
		t.Fatalf("plain request kept in sampled mode with the coin pinned off")
	}

	feedSpan(cs, "incr",
		&txobs.Event{Kind: txobs.KAbort, Retry: 3, Orec: 5, Cause: "conflict"},
		&txobs.Event{Kind: txobs.KCommit, Orec: -1, Retry: 3})
	if tr.Kept() != 1 || tr.SlowCaptured() != 1 {
		t.Fatalf("retry chain ≥ K not kept: kept=%d slow=%d", tr.Kept(), tr.SlowCaptured())
	}
	slow := tr.Slowlog()
	if len(slow) != 1 || slow[0].Keep != "retries" || slow[0].Cmd != "incr" {
		t.Fatalf("slowlog = %+v", slow)
	}

	feedSpan(cs, "set",
		&txobs.Event{Kind: txobs.KAbortSerial, Orec: -1, Cause: "cm limit"},
		&txobs.Event{Kind: txobs.KStartSerial, Serial: true, Orec: -1},
		&txobs.Event{Kind: txobs.KCommit, Serial: true, Orec: -1})
	if tr.Kept() != 2 {
		t.Fatalf("serialized request not kept")
	}
	if got := tr.Slowlog()[1].Keep; got != "serialized" {
		t.Fatalf("serialized span keep = %q", got)
	}

	tr.SetMode(ModeFull)
	feedSpan(cs, "get",
		&txobs.Event{Kind: txobs.KBegin, Orec: -1},
		&txobs.Event{Kind: txobs.KCommit, Orec: -1})
	if tr.Kept() != 3 {
		t.Fatalf("full mode did not keep a plain request")
	}
	if tr.SlowCaptured() != 2 {
		t.Fatalf("plain full-mode request landed in the flight recorder")
	}

	tr.SetMode(ModeOff)
	if cs.Begin("get") {
		t.Fatal("Begin returned true in ModeOff")
	}
}

// TestChainsAndGraph exercises the offline reconstruction: retry chains from
// raw span events, the who-aborted-whom graph, and the hot-label pick.
func TestChainsAndGraph(t *testing.T) {
	spans := []Span{{
		ID: 1, Conn: 3, Cmd: "incr",
		Events: []SpanEvent{
			{Kind: "begin", Site: "add_delta"},
			{Kind: "abort", Site: "add_delta", Owner: "do_store_item", Label: "cas_counter", Cause: "conflict", Retry: 1},
			{Kind: "begin", Site: "add_delta", Retry: 1},
			{Kind: "abort", Site: "add_delta", Owner: "do_store_item", Label: "cas_counter", Cause: "conflict", Retry: 2},
			{Kind: "begin", Site: "add_delta", Retry: 2},
			{Kind: "commit", Site: "add_delta"},
		},
	}, {
		ID: 2, Conn: 4, Cmd: "get",
		Events: []SpanEvent{
			{Kind: "begin", Site: "item_get"},
			{Kind: "abort", Site: "item_get", Owner: "item_unlink", Label: "hash_bucket", Cause: "conflict", Retry: 1},
			{Kind: "begin", Site: "item_get", Retry: 1},
			{Kind: "commit", Site: "item_get"},
		},
	}}

	chains := Chains(spans)
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2: %+v", len(chains), chains)
	}
	if chains[0].Site != "add_delta" || len(chains[0].Attempts) != 3 {
		t.Fatalf("chain 0 = %+v", chains[0])
	}
	if got := chains[0].Attempts[2].Outcome; got != "commit" {
		t.Fatalf("chain 0 final outcome = %q", got)
	}

	graph := GraphFromSpans(spans)
	if len(graph) != 2 {
		t.Fatalf("graph = %+v", graph)
	}
	if graph[0].Owner != "do_store_item" || graph[0].Victim != "add_delta" ||
		graph[0].Label != "cas_counter" || graph[0].Count != 2 {
		t.Fatalf("heaviest edge = %+v", graph[0])
	}
	if hot := HotLabel(graph); hot != "cas_counter" {
		t.Fatalf("HotLabel = %q, want cas_counter", hot)
	}

	ex := &Export{Mode: "full", Slowlog: spans, ConflictGraph: graph}
	report := FormatAnalysis(ex, 10)
	for _, want := range []string{"add_delta", "do_store_item", "cas_counter", "hottest label: cas_counter"} {
		if !contains(report, want) {
			t.Errorf("analysis report missing %q:\n%s", want, report)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && index(s, sub) >= 0
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestAnomalyDetectorAndAutoDump drives Tick directly (the engine's sampler
// normally does this at 1 Hz): an abort spike against a quiet baseline must
// trip the detector and auto-capture a flight-recorder dump.
func TestAnomalyDetectorAndAutoDump(t *testing.T) {
	tr := New(Options{Seed: 1})
	tr.SetMode(ModeSampled)

	// Put something in the flight recorder so the dump has content.
	cs := NewConnSpans(tr, 9)
	feedSpan(cs, "set",
		&txobs.Event{Kind: txobs.KAbort, Retry: 4, Orec: 2, Cause: "conflict"},
		&txobs.Event{Kind: txobs.KCommit, Orec: -1, Retry: 4})

	c := Counters{}
	tr.Tick(c) // seeds the baseline
	for i := 0; i < 3; i++ {
		c.Commits += 100
		c.Aborts += 5
		tr.Tick(c)
	}
	if n := len(tr.Anomalies()); n != 0 {
		t.Fatalf("quiet baseline tripped %d anomalies: %+v", n, tr.Anomalies())
	}
	c.Commits += 100
	c.Aborts += 500 // 500/s against a trailing mean of 5/s
	tr.Tick(c)

	anoms := tr.Anomalies()
	if len(anoms) == 0 || anoms[0].Kind != "abort_spike" {
		t.Fatalf("anomalies = %+v, want abort_spike", anoms)
	}
	dumps := tr.Dumps()
	if len(dumps) == 0 {
		t.Fatal("anomaly did not auto-capture a dump")
	}
	if len(dumps[0].Spans) == 0 {
		t.Fatal("auto dump captured an empty flight recorder")
	}

	// Serialization storm and watchdog escalation on the next second.
	c.Commits += 40
	c.StartSerial += 30
	c.WatchdogSerializes += 2
	tr.Tick(c)
	kinds := map[string]bool{}
	for _, a := range tr.Anomalies() {
		kinds[a.Kind] = true
	}
	if !kinds["serialization_storm"] || !kinds["watchdog_serialize"] {
		t.Fatalf("anomaly kinds = %v, want serialization_storm and watchdog_serialize", kinds)
	}
}

// TestP99EstimateAndRegression checks the rolling p99: the first window seeds
// the estimate outright, and a sudden sustained latency jump trips the
// p99_regression detector.
func TestP99EstimateAndRegression(t *testing.T) {
	tr := New(Options{Seed: 1})
	tr.SetMode(ModeFull)
	if tr.EstP99() != time.Duration(1<<63-1) {
		t.Fatalf("estimate not infinite before evidence: %d", tr.EstP99())
	}

	c := Counters{}
	tr.Tick(c)
	for i := 0; i < 7; i++ {
		for j := 0; j < 100; j++ {
			tr.observeDur(100 * time.Microsecond)
		}
		tr.Tick(c)
	}
	est := tr.EstP99()
	if est <= 0 || est > 10*time.Millisecond {
		t.Fatalf("estimate after calm windows = %v", est)
	}

	for j := 0; j < 100; j++ {
		tr.observeDur(50 * time.Millisecond)
	}
	tr.Tick(c)
	found := false
	for _, a := range tr.Anomalies() {
		if a.Kind == "p99_regression" {
			found = true
		}
	}
	if !found {
		t.Fatalf("latency jump did not trip p99_regression: %+v", tr.Anomalies())
	}
}

// TestTracerReset checks the exactly-once data clear: rings, graph, time
// series, anomalies and dumps go; mode, seed, and the sampler's ordinal
// stream survive so determinism holds across resets.
func TestTracerReset(t *testing.T) {
	tr := New(Options{Seed: 5, RetryK: 2})
	tr.SetMode(ModeFull)
	cs := NewConnSpans(tr, 1)
	feedSpan(cs, "set",
		&txobs.Event{Kind: txobs.KAbort, Retry: 2, Orec: 1, Site: "do_store_item", Cause: "conflict"},
		&txobs.Event{Kind: txobs.KCommit, Orec: -1, Retry: 2})
	tr.TriggerDump("test")
	if tr.SlowlogLen() == 0 || len(tr.Graph()) == 0 || len(tr.Dumps()) == 0 {
		t.Fatal("nothing to reset")
	}
	reqsBefore := tr.Requests()

	tr.Reset()
	if tr.SlowlogLen() != 0 || len(tr.Recent()) != 0 || len(tr.Graph()) != 0 ||
		len(tr.Anomalies()) != 0 || len(tr.Dumps()) != 0 || tr.TimeSeriesSeconds() != 0 ||
		tr.SlowCaptured() != 0 {
		t.Fatal("Reset left data behind")
	}
	if tr.Mode() != ModeFull {
		t.Fatalf("Reset changed the mode to %v", tr.Mode())
	}
	if tr.Seed() != 5 {
		t.Fatalf("Reset changed the seed to %d", tr.Seed())
	}
	if tr.Requests() != reqsBefore {
		t.Fatal("Reset rewound the request ordinal stream (breaks sampler determinism)")
	}

	// Still alive after reset.
	feedSpan(cs, "get",
		&txobs.Event{Kind: txobs.KBegin, Orec: -1},
		&txobs.Event{Kind: txobs.KCommit, Orec: -1})
	if len(tr.Recent()) != 1 {
		t.Fatal("tracer dead after Reset")
	}
}

// TestExportShape sanity-checks the OTLP-style document: resourceSpans
// carries the kept spans with attributes, and the custom sections round-trip.
func TestExportShape(t *testing.T) {
	tr := New(Options{Seed: 1, RetryK: 2})
	tr.SetMode(ModeFull)
	cs := NewConnSpans(tr, 11)
	feedSpan(cs, "incr",
		&txobs.Event{Kind: txobs.KAbort, Retry: 2, Orec: 3, Site: "add_delta", Cause: "conflict", Owner: "do_store_item"},
		&txobs.Event{Kind: txobs.KCommit, Orec: -1, Retry: 2})

	ex := tr.Export()
	if ex.Mode != "full" || ex.Requests != 1 || ex.Kept != 1 || ex.SlowlogLen != 1 {
		t.Fatalf("export header: %+v", ex)
	}
	if len(ex.ResourceSpans) != 1 || len(ex.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("OTLP nesting: %+v", ex.ResourceSpans)
	}
	spans := ex.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != 1 || spans[0].Name != "incr" || len(spans[0].Events) != 2 {
		t.Fatalf("OTLP spans: %+v", spans)
	}
	if len(ex.ConflictGraph) != 1 || ex.ConflictGraph[0].Owner != "do_store_item" {
		t.Fatalf("conflict graph: %+v", ex.ConflictGraph)
	}
}
